//! The parallel-for runtime with runtime-selectable binding policies.

use std::sync::Arc;

use mctop::Mctop;
use mctop_place::{
    PlaceError,
    PlaceOpts,
    PlacePool,
    Policy, //
};

/// An OpenMP-like runtime: `parallel_for` regions execute on threads
/// bound according to the *currently selected* MCTOP-PLACE policy; the
/// policy can change between regions (`omp_set_binding_policy` of the
/// paper).
pub struct OmpRuntime {
    pool: PlacePool,
    threads: usize,
}

impl OmpRuntime {
    /// A runtime over a topology with the given team size.
    pub fn new(topo: Arc<Mctop>, threads: usize) -> Self {
        let threads = threads.clamp(1, topo.num_hwcs());
        let pool = PlacePool::new(topo, PlaceOpts::threads(threads));
        let _ = pool.select(Policy::None);
        OmpRuntime { pool, threads }
    }

    /// Team size.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// The `omp_set_binding_policy` extension: selects the placement
    /// policy used by subsequent parallel regions.
    pub fn set_binding_policy(&self, policy: Policy) -> Result<(), PlaceError> {
        self.pool.select(policy).map(|_| ())
    }

    /// The currently selected policy.
    pub fn binding_policy(&self) -> Policy {
        self.pool.current_policy()
    }

    /// The topology.
    pub fn topology(&self) -> &Arc<Mctop> {
        self.pool.topology()
    }

    /// A parallel-for over `0..n`: `body(i)` runs exactly once per
    /// index, statically chunked over the team.
    pub fn parallel_for<F>(&self, n: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        self.parallel_for_chunked(n, |range| {
            for i in range {
                body(i);
            }
        });
    }

    /// A parallel-for handing each worker a contiguous index range
    /// (lets bodies vectorize / batch).
    pub fn parallel_for_chunked<F>(&self, n: usize, body: F)
    where
        F: Fn(std::ops::Range<usize>) + Sync,
    {
        if n == 0 {
            return;
        }
        let workers = self.threads.min(n).max(1);
        let placement = self.pool.current().expect("current policy is materialized");
        let chunk = n.div_ceil(workers);
        let host_cpus = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let placement = Arc::clone(&placement);
                let body = &body;
                scope.spawn(move || {
                    // Bind if the policy pins and the context exists on
                    // the host; virtual otherwise.
                    let pin = placement.pin();
                    if let Some(p) = pin {
                        if placement.pins() && p.hwc < host_cpus {
                            let _ = mctop_place::pin_os_thread(p.hwc);
                        }
                    }
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    if lo < hi {
                        body(lo..hi);
                    }
                    if let Some(p) = pin {
                        placement.unpin(p);
                    }
                });
            }
        });
    }

    /// Runs `region` under `policy`, restoring the previous policy
    /// afterwards — per-parallel-region placement (the Combination
    /// application of Fig. 12 interleaves two kernels this way).
    pub fn with_policy<R>(
        &self,
        policy: Policy,
        region: impl FnOnce(&Self) -> R,
    ) -> Result<R, PlaceError> {
        let prev = self.binding_policy();
        self.set_binding_policy(policy)?;
        let out = region(self);
        let _ = self.set_binding_policy(prev);
        Ok(out)
    }

    /// Parallel reduction: each worker folds its range, the partials
    /// fold sequentially.
    pub fn parallel_reduce<T, F, G>(&self, n: usize, identity: T, fold: F, combine: G) -> T
    where
        T: Send + Sync + Clone,
        F: Fn(std::ops::Range<usize>, T) -> T + Sync,
        G: Fn(T, T) -> T,
    {
        let partials = parking_lot::Mutex::new(Vec::new());
        self.parallel_for_chunked(n, |range| {
            let v = fold(range, identity.clone());
            partials.lock().push(v);
        });
        partials.into_inner().into_iter().fold(identity, combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{
        AtomicU64,
        Ordering, //
    };

    fn topo() -> Arc<Mctop> {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        Arc::new(mctop::infer(&mut p, &cfg).unwrap())
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let rt = OmpRuntime::new(topo(), 4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        rt.parallel_for(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn policy_switch_between_regions() {
        let rt = OmpRuntime::new(topo(), 4);
        rt.set_binding_policy(Policy::ConHwc).unwrap();
        assert_eq!(rt.binding_policy(), Policy::ConHwc);
        rt.parallel_for(10, |_| {});
        rt.set_binding_policy(Policy::RrCore).unwrap();
        assert_eq!(rt.binding_policy(), Policy::RrCore);
        rt.parallel_for(10, |_| {});
    }

    #[test]
    fn with_policy_restores_previous() {
        let rt = OmpRuntime::new(topo(), 2);
        rt.set_binding_policy(Policy::BalanceHwc).unwrap();
        let out = rt
            .with_policy(Policy::ConCore, |rt| {
                assert_eq!(rt.binding_policy(), Policy::ConCore);
                42
            })
            .unwrap();
        assert_eq!(out, 42);
        assert_eq!(rt.binding_policy(), Policy::BalanceHwc);
    }

    #[test]
    fn reduce_sums_correctly() {
        let rt = OmpRuntime::new(topo(), 3);
        let total = rt.parallel_reduce(
            10_001,
            0u64,
            |range, acc| acc + range.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn empty_and_tiny_loops() {
        let rt = OmpRuntime::new(topo(), 8);
        rt.parallel_for(0, |_| panic!("must not run"));
        let count = AtomicU64::new(0);
        rt.parallel_for(1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
