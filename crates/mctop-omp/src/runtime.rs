//! The parallel-for runtime with runtime-selectable binding policies.
//!
//! Parallel regions execute on one persistent
//! [`mctop_runtime::Executor`]: the team is spawned and pinned once,
//! and every region submits its chunks as targeted tasks. Switching
//! the binding policy (`omp_set_binding_policy`) only records the
//! selection — lock-free, callable even from inside a region body —
//! and the team gracefully re-arms at the start of the next region
//! (in-flight regions drain first). Nested regions run serially on the
//! calling worker (OpenMP's nested-parallelism-off default), since
//! targeting the shared team from inside one of its own tasks cannot
//! make progress. The host-CPU clamp that used to be duplicated here
//! lives in [`mctop_runtime::host`] now, applied by the executor
//! itself.

use std::cell::RefCell;
use std::sync::atomic::{
    AtomicU64,
    Ordering, //
};
use std::sync::Arc;

use mctop::Mctop;
use mctop_place::{
    PlaceError,
    PlaceOpts,
    PlacePool,
    Policy, //
};
use mctop_runtime::{
    ExecCfg,
    Executor, //
};
use parking_lot::RwLock;

/// Distinguishes runtimes so nesting detection is per-runtime: a
/// region of runtime B inside a region of runtime A still runs on B's
/// own team in parallel — only same-runtime nesting must serialize.
static NEXT_RUNTIME_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Runtime ids whose regions are active on the current thread.
    /// Region bodies run on executor workers, so a nested
    /// `parallel_for` on the *same* runtime sees its id here and falls
    /// back to serial execution instead of targeting the very team
    /// that is running it.
    static ACTIVE_REGIONS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn in_region_of(id: u64) -> bool {
    ACTIVE_REGIONS.with(|r| r.borrow().contains(&id))
}

/// RAII region marker, panic-safe: the id pops even when a body
/// unwinds.
struct DepthGuard;

impl DepthGuard {
    fn enter(id: u64) -> DepthGuard {
        ACTIVE_REGIONS.with(|r| r.borrow_mut().push(id));
        DepthGuard
    }
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        ACTIVE_REGIONS.with(|r| {
            r.borrow_mut().pop();
        });
    }
}

/// The armed team: the executor plus the policy its placement came
/// from, so regions can detect a pending policy switch.
struct Team {
    exec: Executor,
    policy: Policy,
}

/// An OpenMP-like runtime: `parallel_for` regions execute on threads
/// bound according to the *currently selected* MCTOP-PLACE policy; the
/// policy can change between regions (`omp_set_binding_policy` of the
/// paper).
pub struct OmpRuntime {
    id: u64,
    pool: PlacePool,
    threads: usize,
    team: RwLock<Team>,
}

impl OmpRuntime {
    /// A runtime over a topology with the given team size.
    pub fn new(topo: Arc<Mctop>, threads: usize) -> Self {
        let threads = threads.clamp(1, topo.num_hwcs());
        let pool = PlacePool::new(topo, PlaceOpts::threads(threads));
        let placement = pool.select(Policy::None).expect("NONE always places");
        let exec = Executor::with_cfg(
            Some(pool.view()),
            &placement,
            ExecCfg {
                workers: Some(threads),
                os_pin: true,
            },
        );
        OmpRuntime {
            id: NEXT_RUNTIME_ID.fetch_add(1, Ordering::Relaxed),
            pool,
            threads,
            team: RwLock::new(Team {
                exec,
                policy: Policy::None,
            }),
        }
    }

    /// Team size.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// The `omp_set_binding_policy` extension: selects the placement
    /// policy used by subsequent parallel regions. Lock-free (like the
    /// pre-executor runtime), so it is safe to call from anywhere —
    /// including inside a region body; the persistent team re-arms on
    /// the new placement's slots when the next region starts.
    pub fn set_binding_policy(&self, policy: Policy) -> Result<(), PlaceError> {
        self.pool.select(policy).map(|_| ())
    }

    /// Hands `f` a team armed for the currently selected policy,
    /// re-arming first if a policy switch is pending. Regions run
    /// under the read lock, so a re-arm waits for them to drain.
    fn with_team<R>(&self, f: impl FnOnce(&Executor) -> R) -> R {
        loop {
            {
                let team = self.team.read();
                if team.policy == self.pool.current_policy() {
                    return f(&team.exec);
                }
            }
            let mut team = self.team.write();
            let want = self.pool.current_policy();
            if team.policy != want {
                let placement = self
                    .pool
                    .get(want)
                    .expect("selected policy was materialized by select()");
                team.exec.rearm(Some(self.pool.view()), &placement);
                team.policy = want;
            }
            // Retake the read lock: another switch may already be
            // pending.
        }
    }

    /// The currently selected policy.
    pub fn binding_policy(&self) -> Policy {
        self.pool.current_policy()
    }

    /// The topology.
    pub fn topology(&self) -> &Arc<Mctop> {
        self.pool.topology()
    }

    /// A parallel-for over `0..n`: `body(i)` runs exactly once per
    /// index, statically chunked over the team.
    pub fn parallel_for<F>(&self, n: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        self.parallel_for_chunked(n, |range| {
            for i in range {
                body(i);
            }
        });
    }

    /// A parallel-for handing each worker a contiguous index range
    /// (lets bodies vectorize / batch). Chunk `w` is targeted at team
    /// worker `w`, which sits pinned on placement slot `w`. Nested
    /// regions (a body calling back into the runtime) execute serially
    /// on the calling worker, matching OpenMP's default of disabled
    /// nested parallelism.
    pub fn parallel_for_chunked<F>(&self, n: usize, body: F)
    where
        F: Fn(std::ops::Range<usize>) + Sync,
    {
        if n == 0 {
            return;
        }
        if in_region_of(self.id) {
            let _guard = DepthGuard::enter(self.id);
            body(0..n);
            return;
        }
        let workers = self.threads.min(n).max(1);
        let chunk = n.div_ceil(workers);
        self.with_team(|exec| {
            exec.scope(|s| {
                for w in 0..workers {
                    let body = &body;
                    s.spawn_on(w, move || {
                        let _guard = DepthGuard::enter(self.id);
                        let lo = w * chunk;
                        let hi = ((w + 1) * chunk).min(n);
                        if lo < hi {
                            body(lo..hi);
                        }
                    });
                }
            })
        });
    }

    /// Runs `region` under `policy`, restoring the previous policy
    /// afterwards — per-parallel-region placement (the Combination
    /// application of Fig. 12 interleaves two kernels this way).
    pub fn with_policy<R>(
        &self,
        policy: Policy,
        region: impl FnOnce(&Self) -> R,
    ) -> Result<R, PlaceError> {
        let prev = self.binding_policy();
        self.set_binding_policy(policy)?;
        let out = region(self);
        let _ = self.set_binding_policy(prev);
        Ok(out)
    }

    /// Parallel reduction: each worker folds its range, the partials
    /// fold sequentially **in ascending range order** — not task
    /// completion order — so the result is deterministic for any
    /// worker count and steal schedule even when `combine` is not
    /// commutative (e.g. floating-point sums).
    pub fn parallel_reduce<T, F, G>(&self, n: usize, identity: T, fold: F, combine: G) -> T
    where
        T: Send + Sync + Clone,
        F: Fn(std::ops::Range<usize>, T) -> T + Sync,
        G: Fn(T, T) -> T,
    {
        let partials = parking_lot::Mutex::new(Vec::new());
        self.parallel_for_chunked(n, |range| {
            let v = fold(range.clone(), identity.clone());
            partials.lock().push((range.start, v));
        });
        let mut partials = partials.into_inner();
        partials.sort_by_key(|&(start, _)| start);
        partials.into_iter().map(|(_, v)| v).fold(identity, combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{
        AtomicU64,
        Ordering, //
    };

    fn topo() -> Arc<Mctop> {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        Arc::new(mctop::infer(&mut p, &cfg).unwrap())
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let rt = OmpRuntime::new(topo(), 4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        rt.parallel_for(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn policy_switch_between_regions() {
        let rt = OmpRuntime::new(topo(), 4);
        rt.set_binding_policy(Policy::ConHwc).unwrap();
        assert_eq!(rt.binding_policy(), Policy::ConHwc);
        rt.parallel_for(10, |_| {});
        rt.set_binding_policy(Policy::RrCore).unwrap();
        assert_eq!(rt.binding_policy(), Policy::RrCore);
        rt.parallel_for(10, |_| {});
    }

    #[test]
    fn with_policy_restores_previous() {
        let rt = OmpRuntime::new(topo(), 2);
        rt.set_binding_policy(Policy::BalanceHwc).unwrap();
        let out = rt
            .with_policy(Policy::ConCore, |rt| {
                assert_eq!(rt.binding_policy(), Policy::ConCore);
                42
            })
            .unwrap();
        assert_eq!(out, 42);
        assert_eq!(rt.binding_policy(), Policy::BalanceHwc);
    }

    #[test]
    fn nested_parallel_for_runs_serially_without_deadlock() {
        let rt = OmpRuntime::new(topo(), 4);
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        // The outer bodies run on team workers; the inner region must
        // fall back to serial execution instead of targeting the very
        // workers that are busy running the outer bodies.
        rt.parallel_for(10, |_outer| {
            rt.parallel_for(100, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 10));
    }

    #[test]
    fn policy_switch_from_inside_a_region_does_not_deadlock() {
        let rt = OmpRuntime::new(topo(), 4);
        rt.parallel_for(8, |i| {
            if i == 0 {
                rt.set_binding_policy(Policy::RrCore).unwrap();
            }
        });
        assert_eq!(rt.binding_policy(), Policy::RrCore);
        // The switch takes effect when the next region arms the team.
        let count = AtomicU64::new(0);
        rt.parallel_for(8, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 8);
    }

    #[test]
    fn cross_runtime_nesting_uses_the_inner_team() {
        let rt_a = OmpRuntime::new(topo(), 2);
        let rt_b = OmpRuntime::new(topo(), 4);
        let seen = parking_lot::Mutex::new(std::collections::HashSet::new());
        rt_a.parallel_for_chunked(1, |_range| {
            rt_b.parallel_for(4, |_i| {
                seen.lock().insert(std::thread::current().id());
            });
        });
        // The inner region belongs to a different runtime: its four
        // chunks run targeted on rt_b's own team (four distinct worker
        // threads), not serialized on rt_a's worker.
        assert_eq!(seen.lock().len(), 4);
    }

    #[test]
    fn reduce_is_deterministic_for_order_sensitive_combine() {
        let rt = OmpRuntime::new(topo(), 4);
        let n = 10usize;
        let chunk = n.div_ceil(4);
        // Sequential reference folding the chunk partials in ascending
        // range order with a non-commutative combine.
        let expected = {
            let mut acc = 0u64;
            let mut lo = 0;
            while lo < n {
                let hi = (lo + chunk).min(n);
                let part: u64 = (lo..hi).map(|i| i as u64).sum();
                acc = acc.wrapping_mul(31).wrapping_add(part);
                lo = hi;
            }
            acc
        };
        for _ in 0..10 {
            let got = rt.parallel_reduce(
                n,
                0u64,
                |range, acc| acc + range.map(|i| i as u64).sum::<u64>(),
                |a, b| a.wrapping_mul(31).wrapping_add(b),
            );
            assert_eq!(got, expected, "fold order must not depend on scheduling");
        }
    }

    #[test]
    fn reduce_sums_correctly() {
        let rt = OmpRuntime::new(topo(), 3);
        let total = rt.parallel_reduce(
            10_001,
            0u64,
            |range, acc| acc + range.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn empty_and_tiny_loops() {
        let rt = OmpRuntime::new(topo(), 8);
        rt.parallel_for(0, |_| panic!("must not run"));
        let count = AtomicU64::new(0);
        rt.parallel_for(1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
