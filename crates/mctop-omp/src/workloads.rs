//! The Green-Marl graph workloads of Fig. 12, implemented over
//! [`OmpRuntime`] parallel regions.

use std::sync::atomic::{
    AtomicBool,
    AtomicU32,
    AtomicU64,
    Ordering, //
};

use rand::rngs::SmallRng;
use rand::{
    Rng,
    SeedableRng, //
};

use crate::graph::Graph;
use crate::runtime::OmpRuntime;

/// PageRank with uniform damping, `iters` synchronous iterations.
pub fn pagerank(rt: &OmpRuntime, g: &Graph, iters: usize) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    const D: f64 = 0.85;
    let mut ranks = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        // Push contributions: out[v] = (1-d)/n + d * sum(in contributions).
        let contrib: Vec<f64> = ranks
            .iter()
            .enumerate()
            .map(|(v, r)| r / g.degree(v).max(1) as f64)
            .collect();
        let next: Vec<AtomicU64> = (0..n)
            .map(|_| AtomicU64::new(((1.0 - D) / n as f64).to_bits()))
            .collect();
        rt.parallel_for(n, |v| {
            for &dst in g.neighbors(v) {
                let add = D * contrib[v];
                // Atomic f64 add via CAS on the bits.
                let cell = &next[dst as usize];
                let mut cur = cell.load(Ordering::Relaxed);
                loop {
                    let new = (f64::from_bits(cur) + add).to_bits();
                    match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
                    {
                        Ok(_) => break,
                        Err(c) => cur = c,
                    }
                }
            }
        });
        ranks = next
            .into_iter()
            .map(|a| f64::from_bits(a.into_inner()))
            .collect();
    }
    ranks
}

/// Hop distance (BFS levels) from `src`; unreachable nodes get
/// `u32::MAX`.
pub fn hop_distance(rt: &OmpRuntime, g: &Graph, src: usize) -> Vec<u32> {
    let n = g.num_nodes();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    dist[src].store(0, Ordering::Relaxed);
    let mut level = 0u32;
    loop {
        let changed = AtomicBool::new(false);
        rt.parallel_for(n, |v| {
            if dist[v].load(Ordering::Relaxed) == level {
                for &nb in g.neighbors(v) {
                    let cell = &dist[nb as usize];
                    if cell.load(Ordering::Relaxed) > level + 1 {
                        cell.store(level + 1, Ordering::Relaxed);
                        changed.store(true, Ordering::Relaxed);
                    }
                }
            }
        });
        if !changed.load(Ordering::Relaxed) {
            break;
        }
        level += 1;
    }
    dist.into_iter().map(AtomicU32::into_inner).collect()
}

/// Community detection by synchronous min-label propagation.
pub fn communities(rt: &OmpRuntime, g: &Graph, iters: usize) -> Vec<u32> {
    let n = g.num_nodes();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    for _ in 0..iters {
        let next: Vec<AtomicU32> = labels.iter().map(|&l| AtomicU32::new(l)).collect();
        let cur = &labels;
        rt.parallel_for(n, |v| {
            let mut best = cur[v];
            for &nb in g.neighbors(v) {
                best = best.min(cur[nb as usize]);
            }
            next[v].store(best, Ordering::Relaxed);
        });
        labels = next.into_iter().map(AtomicU32::into_inner).collect();
    }
    labels
}

/// Potential friends: total number of common-neighbor pairs over the
/// first `pairs` sampled vertex pairs (friend-of-friend counting).
pub fn potential_friends(rt: &OmpRuntime, g: &Graph, pairs: usize, seed: u64) -> u64 {
    let n = g.num_nodes();
    if n < 2 {
        return 0;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let samples: Vec<(usize, usize)> = (0..pairs)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let total = AtomicU64::new(0);
    rt.parallel_for(samples.len(), |i| {
        let (a, b) = samples[i];
        let common = common_neighbors(g, a, b);
        total.fetch_add(common, Ordering::Relaxed);
    });
    total.into_inner()
}

fn common_neighbors(g: &Graph, a: usize, b: usize) -> u64 {
    // Both adjacency lists are sorted (CSR built from sorted edges).
    let (mut i, mut j) = (0usize, 0usize);
    let (na, nb) = (g.neighbors(a), g.neighbors(b));
    let mut count = 0u64;
    while i < na.len() && j < nb.len() {
        match na[i].cmp(&nb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Random degree sampling: estimates the average degree from `samples`
/// uniformly sampled nodes.
pub fn rand_degree_sampling(rt: &OmpRuntime, g: &Graph, samples: usize, seed: u64) -> f64 {
    let n = g.num_nodes();
    if n == 0 || samples == 0 {
        return 0.0;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let picks: Vec<usize> = (0..samples).map(|_| rng.gen_range(0..n)).collect();
    let sum = AtomicU64::new(0);
    rt.parallel_for(picks.len(), |i| {
        sum.fetch_add(g.degree(picks[i]) as u64, Ordering::Relaxed);
    });
    sum.into_inner() as f64 / samples as f64
}

/// The Combination application of Fig. 12: PageRank and Potential
/// Friends in one program, each parallel region under its own policy
/// ("With OpenMP, it is impossible to recreate MCTOP MP's placement").
pub fn combination(
    rt: &OmpRuntime,
    g: &Graph,
    pagerank_policy: mctop_place::Policy,
    friends_policy: mctop_place::Policy,
) -> (Vec<f64>, u64) {
    let ranks = rt
        .with_policy(pagerank_policy, |rt| pagerank(rt, g, 3))
        .expect("pagerank region");
    let friends = rt
        .with_policy(friends_policy, |rt| potential_friends(rt, g, 2000, 1))
        .expect("friends region");
    (ranks, friends)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rt() -> OmpRuntime {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        OmpRuntime::new(Arc::new(mctop::infer(&mut p, &cfg).unwrap()), 4)
    }

    fn line_graph(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1)
            .flat_map(|i| [(i, i + 1), (i + 1, i)])
            .collect();
        Graph::from_edges(n, edges)
    }

    #[test]
    fn hop_distance_on_a_line() {
        let rt = rt();
        let g = line_graph(50);
        let d = hop_distance(&rt, &g, 0);
        for (v, &dist) in d.iter().enumerate() {
            assert_eq!(dist, v as u32);
        }
    }

    #[test]
    fn hop_distance_unreachable() {
        let rt = rt();
        let g = Graph::from_edges(3, vec![(0, 1)]);
        let d = hop_distance(&rt, &g, 0);
        assert_eq!(d, vec![0, 1, u32::MAX]);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        let rt = rt();
        // Star: everyone points to node 0.
        let edges: Vec<(u32, u32)> = (1..100u32).map(|v| (v, 0)).collect();
        let g = Graph::from_edges(100, edges);
        let pr = pagerank(&rt, &g, 10);
        let sum: f64 = pr.iter().sum();
        // Dangling mass leaks (standard simple formulation); what must
        // hold: node 0 dominates.
        assert!(pr[0] > pr[1] * 10.0, "hub {} leaf {}", pr[0], pr[1]);
        assert!(sum > 0.0 && sum <= 1.01);
    }

    #[test]
    fn pagerank_matches_sequential_reference() {
        let rt = rt();
        let g = Graph::synthetic(300, 5, 11);
        let par = pagerank(&rt, &g, 5);
        // Sequential reference.
        let n = g.num_nodes();
        let mut ranks = vec![1.0 / n as f64; n];
        for _ in 0..5 {
            let contrib: Vec<f64> = ranks
                .iter()
                .enumerate()
                .map(|(v, r)| r / g.degree(v).max(1) as f64)
                .collect();
            let mut next = vec![0.15 / n as f64; n];
            for (v, &c) in contrib.iter().enumerate() {
                for &d in g.neighbors(v) {
                    next[d as usize] += 0.85 * c;
                }
            }
            ranks = next;
        }
        for (a, b) in par.iter().zip(&ranks) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn communities_converge_on_components() {
        let rt = rt();
        // Two disjoint triangles.
        let edges = vec![
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (2, 0),
            (0, 2),
            (3, 4),
            (4, 3),
            (4, 5),
            (5, 4),
            (5, 3),
            (3, 5),
        ];
        let g = Graph::from_edges(
            6,
            edges
                .into_iter()
                .map(|(a, b)| (a as u32, b as u32))
                .collect(),
        );
        let labels = communities(&rt, &g, 5);
        assert_eq!(&labels[..3], &[0, 0, 0]);
        assert_eq!(&labels[3..], &[3, 3, 3]);
    }

    #[test]
    fn potential_friends_counts_common_neighbors() {
        let rt = rt();
        let g = Graph::synthetic(200, 6, 3);
        let a = potential_friends(&rt, &g, 500, 9);
        let b = potential_friends(&rt, &g, 500, 9);
        assert_eq!(a, b, "deterministic under a fixed seed");
    }

    #[test]
    fn rand_degree_sampling_estimates_average() {
        let rt = rt();
        let g = Graph::synthetic(2000, 8, 5);
        let truth = g.num_edges() as f64 / g.num_nodes() as f64;
        let est = rand_degree_sampling(&rt, &g, 4000, 2);
        assert!(
            (est - truth).abs() / truth < 0.15,
            "est {est} truth {truth}"
        );
    }

    #[test]
    fn combination_runs_both_kernels_under_policies() {
        let rt = rt();
        let g = Graph::synthetic(300, 5, 1);
        let (ranks, friends) = combination(
            &rt,
            &g,
            mctop_place::Policy::BalanceCore,
            mctop_place::Policy::ConCoreHwc,
        );
        assert_eq!(ranks.len(), 300);
        let _ = friends;
        // Policy restored after the regions.
        assert_eq!(rt.binding_policy(), mctop_place::Policy::None);
    }
}
