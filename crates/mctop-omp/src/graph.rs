//! CSR graphs and a synthetic generator (the paper's Fig. 12 workloads
//! run on 100 M-node/800 M-edge graphs; the real-execution path here
//! uses the same algorithms on host-sized graphs).

use rand::rngs::SmallRng;
use rand::{
    Rng,
    SeedableRng, //
};

/// A directed graph in compressed-sparse-row form.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Offsets into `adj`, length `n + 1`.
    pub offsets: Vec<usize>,
    /// Concatenated adjacency lists.
    pub adj: Vec<u32>,
}

impl Graph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.len()
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Builds a graph from an edge list (sorts and deduplicates).
    pub fn from_edges(n: usize, mut edges: Vec<(u32, u32)>) -> Graph {
        edges.sort_unstable();
        edges.dedup();
        let mut offsets = vec![0usize; n + 1];
        for &(s, _) in &edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let adj = edges.into_iter().map(|(_, d)| d).collect();
        Graph { offsets, adj }
    }

    /// Synthetic graph with a skewed (preferential-attachment-flavoured)
    /// degree distribution, `n` nodes and about `n * avg_degree` edges.
    pub fn synthetic(n: usize, avg_degree: usize, seed: u64) -> Graph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(n * avg_degree);
        for s in 0..n as u32 {
            for _ in 0..avg_degree {
                // Skew toward low ids (hub nodes), Zipf-ish.
                let u: f64 = rng.gen::<f64>().max(1e-12);
                let d = ((n as f64) * u * u) as u32 % n as u32;
                if d != s {
                    edges.push((s, d));
                }
            }
        }
        Graph::from_edges(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_valid_csr() {
        let g = Graph::from_edges(4, vec![(0, 1), (0, 2), (2, 3), (1, 0), (0, 1)]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4); // Duplicate (0,1) removed.
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
    }

    #[test]
    fn synthetic_shape() {
        let g = Graph::synthetic(1000, 8, 7);
        assert_eq!(g.num_nodes(), 1000);
        assert!(g.num_edges() > 4000, "edges {}", g.num_edges());
        // Skewed: node 0 region should have above-average in-degree;
        // verify hubs exist by checking the max degree.
        let max_deg = (0..1000).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg >= 8);
        // All targets in range.
        assert!(g.adj.iter().all(|&d| (d as usize) < 1000));
    }

    #[test]
    fn deterministic_generation() {
        let a = Graph::synthetic(500, 4, 3);
        let b = Graph::synthetic(500, 4, 3);
        assert_eq!(a.adj, b.adj);
        assert_eq!(a.offsets, b.offsets);
    }
}
