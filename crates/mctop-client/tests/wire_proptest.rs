//! Property tests for the wire protocol: round trips, canonical
//! encoding, and the promise that hostile bytes — truncations,
//! oversized length prefixes, bit flips — are rejected with typed
//! errors and never panic.

use std::io::Cursor;

use mctop_client::wire::{
    decode_request,
    decode_response,
    drain_frames,
    encode_request,
    encode_response,
    read_frame,
    write_frame,
    Request,
    Response,
    WireError,
    MAX_FRAME_LEN, //
};
use mctop_client::ErrorCode;
use proptest::prelude::*;

/// Deterministically derives a small string from a seed: a mix of
/// ASCII identifiers, empty strings, and multi-byte UTF-8 so string
/// length (bytes) and char count diverge.
fn string_from(seed: u64) -> String {
    match seed % 5 {
        0 => String::new(),
        1 => format!("machine-{}", seed % 97),
        2 => format!("q{}", seed % 13),
        3 => format!("héllo-{}", seed % 7), // multi-byte UTF-8
        _ => "x".repeat((seed % 40) as usize),
    }
}

/// Derives one of every request kind from three seeds.
fn request_from(sel: u8, a: u64, b: u64) -> Request {
    match sel % 8 {
        0 => Request::Hello {
            version: (a % u64::from(u16::MAX)) as u16,
        },
        1 => Request::ListTopologies,
        2 => Request::Query {
            desc: string_from(a),
            query: string_from(b),
            args: (0..(a % 5)).map(|i| string_from(b ^ i)).collect(),
        },
        3 => Request::Placement {
            desc: string_from(a),
            policy: string_from(b),
            workers: (a % 1000) as u32,
        },
        4 => Request::AllocPlan {
            desc: string_from(b),
            policy: string_from(a),
            workers: (b % 1000) as u32,
        },
        5 => Request::MetricsSnapshot,
        6 => Request::Reload,
        _ => Request::Shutdown,
    }
}

/// Derives one of every response kind from two seeds.
fn response_from(sel: u8, a: u64) -> Response {
    match sel % 3 {
        0 => Response::HelloOk {
            version: (a % u64::from(u16::MAX)) as u16,
        },
        1 => Response::Ok {
            body: (0..(a % 200)).map(|i| (a ^ i) as u8).collect(),
        },
        _ => Response::Err {
            code: match a % 5 {
                0 => ErrorCode::VersionMismatch,
                1 => ErrorCode::MalformedFrame,
                2 => ErrorCode::BadRequest,
                3 => ErrorCode::Internal,
                _ => ErrorCode::ShuttingDown,
            },
            message: string_from(a),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request survives encode → decode unchanged, and the
    /// framed form survives write_frame → read_frame.
    #[test]
    fn request_round_trips(sel in any::<u8>(), a in any::<u64>(), b in any::<u64>()) {
        let req = request_from(sel, a, b);
        let payload = encode_request(&req);
        prop_assert_eq!(decode_request(&payload).unwrap(), req.clone());

        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        let read = read_frame(&mut Cursor::new(&framed)).unwrap().unwrap();
        prop_assert_eq!(decode_request(&read).unwrap(), req);
    }

    /// Every response survives encode → decode unchanged.
    #[test]
    fn response_round_trips(sel in any::<u8>(), a in any::<u64>()) {
        let resp = response_from(sel, a);
        let payload = encode_response(&resp);
        prop_assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    /// A truncated payload is a typed error at *every* cut point —
    /// never a panic, never a silent partial decode.
    #[test]
    fn truncated_requests_rejected(sel in any::<u8>(), a in any::<u64>(), b in any::<u64>()) {
        let payload = encode_request(&request_from(sel, a, b));
        for cut in 0..payload.len() {
            match decode_request(&payload[..cut]) {
                Err(WireError::Truncated) | Err(WireError::BadTag(_)) => {}
                Err(e) => prop_assert!(false, "cut {cut}: unexpected error class {e}"),
                Ok(req) => prop_assert!(false, "cut {cut}: decoded {req:?} from a prefix"),
            }
        }
    }

    /// Trailing garbage after a complete body is rejected: the
    /// encoding is canonical, a frame is exactly its bytes.
    #[test]
    fn trailing_bytes_rejected(
        sel in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        extra in 1usize..16,
    ) {
        let mut payload = encode_request(&request_from(sel, a, b));
        payload.extend(std::iter::repeat_n(0xAA, extra));
        // Hello ignores the added bytes only if a string-length field
        // absorbs them — which these fixed encodings never do.
        prop_assert!(
            matches!(decode_request(&payload), Err(WireError::TrailingBytes(_))),
            "trailing bytes accepted"
        );
    }

    /// Flipping any single bit of a valid payload either produces a
    /// typed error or another *canonically encoded* frame — decoding
    /// never panics, and an accepted mutation always re-encodes to
    /// exactly the mutated bytes.
    #[test]
    fn bit_flips_never_panic(
        sel in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        flip in any::<u64>(),
    ) {
        let mut payload = encode_request(&request_from(sel, a, b));
        let bit = (flip as usize) % (payload.len() * 8);
        payload[bit / 8] ^= 1 << (bit % 8);
        match decode_request(&payload) {
            Err(_) => {}
            Ok(req) => prop_assert_eq!(
                encode_request(&req),
                payload,
                "accepted mutation is not canonical"
            ),
        }
    }

    /// A hostile length prefix is rejected before any allocation.
    #[test]
    fn oversized_frames_rejected(excess in 1u32..1000) {
        let len = MAX_FRAME_LEN + excess;
        let framed = len.to_le_bytes().to_vec();
        prop_assert!(matches!(
            read_frame(&mut Cursor::new(&framed)),
            Err(WireError::Oversized(l)) if l == len
        ));
    }

    /// A stream cut mid-frame is `UnexpectedEof`; a stream cut at a
    /// frame boundary is a clean `Ok(None)`.
    #[test]
    fn eof_typing(sel in any::<u8>(), a in any::<u64>(), b in any::<u64>(), cut in any::<u64>()) {
        let payload = encode_request(&request_from(sel, a, b));
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();

        let cut = 1 + (cut as usize) % (framed.len() - 1);
        prop_assert!(matches!(
            read_frame(&mut Cursor::new(&framed[..cut])),
            Err(WireError::UnexpectedEof)
        ));
        prop_assert!(matches!(read_frame(&mut Cursor::new(&[] as &[u8])), Ok(None)));
    }

    /// `drain_frames` splits a pipelined burst back into the original
    /// frames and keeps a partial tail buffered.
    #[test]
    fn drain_splits_bursts(
        sels in prop::collection::vec(any::<u8>(), 1..8),
        a in any::<u64>(),
        b in any::<u64>(),
        cut in any::<u64>(),
    ) {
        let requests: Vec<Request> = sels
            .iter()
            .enumerate()
            .map(|(i, sel)| request_from(*sel, a ^ i as u64, b ^ i as u64))
            .collect();
        let mut burst = Vec::new();
        for req in &requests {
            write_frame(&mut burst, &encode_request(req)).unwrap();
        }

        // Whole burst: every frame comes back, buffer drains empty.
        let mut buf = burst.clone();
        let (frames, err) = drain_frames(&mut buf);
        prop_assert!(err.is_none());
        prop_assert!(buf.is_empty());
        let decoded: Vec<Request> = frames
            .iter()
            .map(|f| decode_request(f).unwrap())
            .collect();
        prop_assert_eq!(decoded, requests);

        // Partial burst: the incomplete tail stays buffered verbatim.
        let cut = (cut as usize) % burst.len();
        let mut buf = burst[..cut].to_vec();
        let (frames, err) = drain_frames(&mut buf);
        prop_assert!(err.is_none());
        let consumed: usize = frames.iter().map(|f| 4 + f.len()).sum();
        prop_assert_eq!(&burst[consumed..cut], &buf[..]);
    }
}
