//! The MCTOP wire protocol: versioned, length-prefixed frames.
//!
//! Every message on the socket is one *frame*:
//!
//! ```text
//! frame   := len:u32le payload            (len = payload byte count)
//! payload := tag:u8 body                  (body layout fixed per tag)
//! ```
//!
//! Integers are little-endian; a string is `len:u32le` followed by that
//! many UTF-8 bytes; a list is `count:u32le` followed by its items. The
//! encoding is *canonical*: every frame has exactly one byte
//! representation, and decoding consumes the whole payload (trailing
//! bytes are a [`WireError::TrailingBytes`], not silently ignored).
//! Frames longer than [`MAX_FRAME_LEN`] are rejected before any
//! allocation, so a hostile length prefix cannot balloon memory.
//!
//! # Versioning rules
//!
//! The first frame on every connection must be [`Request::Hello`]
//! carrying the client's [`PROTO_VERSION`]. The server answers
//! [`Response::HelloOk`] with its own version if they match, or an
//! [`ErrorCode::VersionMismatch`] error frame and closes the
//! connection. Tags, field orders, and widths of existing frames never
//! change within a protocol version; additions bump [`PROTO_VERSION`].
//! Unknown tags decode to [`WireError::BadTag`] — never a panic.

use std::fmt;
use std::io::{
    self,
    Read,
    Write, //
};

/// The protocol version this crate speaks. Negotiated by the
/// mandatory `Hello`/`HelloOk` exchange that opens every connection.
pub const PROTO_VERSION: u16 = 1;

/// Hard ceiling on a frame's payload length (16 MiB). Larger length
/// prefixes are rejected by [`read_frame`] before allocating.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

// Request tags (client -> server).
const TAG_HELLO: u8 = 0x01;
const TAG_LIST: u8 = 0x10;
const TAG_QUERY: u8 = 0x11;
const TAG_PLACEMENT: u8 = 0x12;
const TAG_ALLOC_PLAN: u8 = 0x13;
const TAG_METRICS: u8 = 0x14;
const TAG_RELOAD: u8 = 0x15;
const TAG_SHUTDOWN: u8 = 0x16;

// Response tags (server -> client).
const TAG_HELLO_OK: u8 = 0x81;
const TAG_OK: u8 = 0x90;
const TAG_ERR: u8 = 0x91;

/// A client request frame. See `docs/SERVING.md` for the request
/// catalog and the exact body each one returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Version negotiation; must be the first frame on a connection.
    Hello {
        /// The client's protocol version ([`PROTO_VERSION`]).
        version: u16,
    },
    /// Names of the topologies the server can answer for, one per
    /// line, exactly as `mct list` prints them.
    ListTopologies,
    /// A topology query by machine name — the `mct query` vocabulary,
    /// answered byte-identically to the local CLI.
    Query {
        /// Machine name in the server's registry (e.g. `ivy`).
        desc: String,
        /// Query name (e.g. `latency`, `summary`, `alloc-plan`).
        query: String,
        /// Positional query arguments, verbatim.
        args: Vec<String>,
    },
    /// A placement of `workers` threads under a named policy; returns
    /// the `Placement::render()` block byte-identically.
    Placement {
        /// Machine name in the server's registry.
        desc: String,
        /// Paper-style policy name (e.g. `RR_CORE`), case-insensitive.
        policy: String,
        /// Thread count; 0 means every hardware context.
        workers: u32,
    },
    /// A resolved memory allocation plan; returns the
    /// `AllocPlan::render()` block byte-identically.
    AllocPlan {
        /// Machine name in the server's registry.
        desc: String,
        /// Alloc policy (`local`, `interleave`, `bw`, `on-nodes:..`).
        policy: String,
        /// Worker count; 0 means every hardware context.
        workers: u32,
    },
    /// The server's live runtime + serving counters as JSON
    /// (`{"runtime": MetricsSnapshot, "server": ServerSnapshot}`).
    MetricsSnapshot,
    /// Admin: drop every memoized topology; later lookups re-load from
    /// the description source and hand out fresh `Arc<TopoView>`s.
    Reload,
    /// Admin: gracefully stop the server after answering this frame.
    Shutdown,
}

impl Request {
    /// Short stable name, used by transcripts and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::ListTopologies => "list-topologies",
            Request::Query { .. } => "query",
            Request::Placement { .. } => "placement",
            Request::AllocPlan { .. } => "alloc-plan",
            Request::MetricsSnapshot => "metrics-snapshot",
            Request::Reload => "reload",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A server response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Successful version negotiation.
    HelloOk {
        /// The server's protocol version.
        version: u16,
    },
    /// Success; `body` is the request's result bytes (UTF-8 text for
    /// every current request kind, empty for the admin requests).
    Ok {
        /// Result bytes, byte-identical to the direct library call.
        body: Vec<u8>,
    },
    /// Typed failure. The connection stays open except for
    /// [`ErrorCode::VersionMismatch`] and [`ErrorCode::MalformedFrame`],
    /// after which the server closes it.
    Err {
        /// What failed.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Error classes a server can answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The client's `Hello` carried an unsupported protocol version.
    /// The server closes the connection after this frame.
    VersionMismatch,
    /// The frame could not be decoded (bad tag, truncated body,
    /// trailing bytes, oversized length). The server closes the
    /// connection: framing is lost, recovery is impossible.
    MalformedFrame,
    /// The frame decoded but the request is unanswerable (unknown
    /// machine, unknown query, bad arguments). The connection stays
    /// open.
    BadRequest,
    /// The server failed internally while answering. The connection
    /// stays open.
    Internal,
    /// The server is shutting down and will not answer new requests.
    ShuttingDown,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::VersionMismatch => 1,
            ErrorCode::MalformedFrame => 2,
            ErrorCode::BadRequest => 3,
            ErrorCode::Internal => 4,
            ErrorCode::ShuttingDown => 5,
        }
    }

    fn from_byte(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::VersionMismatch,
            2 => ErrorCode::MalformedFrame,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::Internal,
            5 => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }

    /// Stable lower-case name (used in rendered transcripts).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Internal => "internal",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a frame could not be decoded (or read). Every variant is a
/// clean, typed rejection — malformed input never panics.
#[derive(Debug)]
pub enum WireError {
    /// The payload ended before the field being decoded.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// Unknown frame tag.
    BadTag(u8),
    /// Decoding finished with payload bytes left over.
    TrailingBytes(usize),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// The stream ended in the middle of a frame.
    UnexpectedEof,
    /// An I/O error while reading or writing a frame.
    Io(io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame body truncated"),
            WireError::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN} cap")
            }
            WireError::BadTag(tag) => write!(f, "unknown frame tag 0x{tag:02x}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after the frame body"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::UnexpectedEof => write!(f, "connection closed mid-frame"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

// ---------------------------------------------------------------- encode

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Encodes a request into a frame payload (without the length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Hello { version } => {
            out.push(TAG_HELLO);
            put_u16(&mut out, *version);
        }
        Request::ListTopologies => out.push(TAG_LIST),
        Request::Query { desc, query, args } => {
            out.push(TAG_QUERY);
            put_str(&mut out, desc);
            put_str(&mut out, query);
            put_u32(&mut out, args.len() as u32);
            for a in args {
                put_str(&mut out, a);
            }
        }
        Request::Placement {
            desc,
            policy,
            workers,
        } => {
            out.push(TAG_PLACEMENT);
            put_str(&mut out, desc);
            put_str(&mut out, policy);
            put_u32(&mut out, *workers);
        }
        Request::AllocPlan {
            desc,
            policy,
            workers,
        } => {
            out.push(TAG_ALLOC_PLAN);
            put_str(&mut out, desc);
            put_str(&mut out, policy);
            put_u32(&mut out, *workers);
        }
        Request::MetricsSnapshot => out.push(TAG_METRICS),
        Request::Reload => out.push(TAG_RELOAD),
        Request::Shutdown => out.push(TAG_SHUTDOWN),
    }
    out
}

/// Encodes a response into a frame payload (without the length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::HelloOk { version } => {
            out.push(TAG_HELLO_OK);
            put_u16(&mut out, *version);
        }
        Response::Ok { body } => {
            out.push(TAG_OK);
            put_bytes(&mut out, body);
        }
        Response::Err { code, message } => {
            out.push(TAG_ERR);
            out.push(code.to_byte());
            put_str(&mut out, message);
        }
    }
    out
}

// ---------------------------------------------------------------- decode

/// Bounds-checked cursor over one frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Rejects payloads with bytes left after the body — the canonical
    /// encoding has none, so leftovers mean a corrupt or hostile frame.
    fn finish(self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len() - self.at))
        }
    }
}

/// Decodes one request frame payload. Strict: unknown tags, truncated
/// bodies, bad UTF-8, and trailing bytes are all typed errors.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        TAG_HELLO => Request::Hello { version: c.u16()? },
        TAG_LIST => Request::ListTopologies,
        TAG_QUERY => {
            let desc = c.string()?;
            let query = c.string()?;
            let count = c.u32()? as usize;
            // Each argument costs at least 4 bytes (its length prefix):
            // a hostile count cannot reserve more than the payload holds.
            if count > payload.len() / 4 {
                return Err(WireError::Truncated);
            }
            let mut args = Vec::with_capacity(count);
            for _ in 0..count {
                args.push(c.string()?);
            }
            Request::Query { desc, query, args }
        }
        TAG_PLACEMENT => Request::Placement {
            desc: c.string()?,
            policy: c.string()?,
            workers: c.u32()?,
        },
        TAG_ALLOC_PLAN => Request::AllocPlan {
            desc: c.string()?,
            policy: c.string()?,
            workers: c.u32()?,
        },
        TAG_METRICS => Request::MetricsSnapshot,
        TAG_RELOAD => Request::Reload,
        TAG_SHUTDOWN => Request::Shutdown,
        tag => return Err(WireError::BadTag(tag)),
    };
    c.finish()?;
    Ok(req)
}

/// Decodes one response frame payload, as strictly as
/// [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut c = Cursor::new(payload);
    let resp = match c.u8()? {
        TAG_HELLO_OK => Response::HelloOk { version: c.u16()? },
        TAG_OK => Response::Ok { body: c.bytes()? },
        TAG_ERR => {
            let code_byte = c.u8()?;
            let code = ErrorCode::from_byte(code_byte).ok_or(WireError::BadTag(code_byte))?;
            Response::Err {
                code,
                message: c.string()?,
            }
        }
        tag => return Err(WireError::BadTag(tag)),
    };
    c.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------- frame io

/// Writes one frame: length prefix, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame payload. Returns `Ok(None)` on a clean EOF at a
/// frame boundary; EOF inside a frame is [`WireError::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::UnexpectedEof),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    let mut at = 0;
    while at < payload.len() {
        match r.read(&mut payload[at..]) {
            Ok(0) => return Err(WireError::UnexpectedEof),
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(Some(payload))
}

/// Splits as many complete frames as `buf` holds off its front,
/// returning their payloads. Leftover bytes (a partial trailing frame)
/// stay in `buf`. An oversized length prefix stops the scan and is
/// reported *alongside* the frames already parsed — a hostile tail
/// never discards the valid requests pipelined ahead of it.
pub fn drain_frames(buf: &mut Vec<u8>) -> (Vec<Vec<u8>>, Option<WireError>) {
    let mut frames = Vec::new();
    let mut at = 0usize;
    let mut error = None;
    while buf.len() - at >= 4 {
        let len = u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]);
        if len > MAX_FRAME_LEN {
            error = Some(WireError::Oversized(len));
            break;
        }
        let total = 4 + len as usize;
        if buf.len() - at < total {
            break;
        }
        frames.push(buf[at + 4..at + total].to_vec());
        at += total;
    }
    buf.drain(..at);
    (frames, error)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Hello {
                version: PROTO_VERSION,
            },
            Request::ListTopologies,
            Request::Query {
                desc: "ivy".into(),
                query: "latency".into(),
                args: vec!["0".into(), "20".into()],
            },
            Request::Placement {
                desc: "westmere".into(),
                policy: "RR_CORE".into(),
                workers: 8,
            },
            Request::AllocPlan {
                desc: "sparc".into(),
                policy: "bw".into(),
                workers: 0,
            },
            Request::MetricsSnapshot,
            Request::Reload,
            Request::Shutdown,
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in all_requests() {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::HelloOk {
                version: PROTO_VERSION,
            },
            Response::Ok { body: vec![] },
            Response::Ok {
                body: b"140\n".to_vec(),
            },
            Response::Err {
                code: ErrorCode::BadRequest,
                message: "unknown machine `nope`".into(),
            },
        ];
        for resp in resps {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_request(&Request::Reload);
        bytes.push(0);
        assert!(matches!(
            decode_request(&bytes),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = encode_request(&Request::Query {
            desc: "ivy".into(),
            query: "summary".into(),
            args: vec!["x".into()],
        });
        for cut in 0..bytes.len() {
            assert!(decode_request(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_frames_rejected_without_allocation() {
        let mut buf: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0x00];
        assert!(matches!(read_frame(&mut buf), Err(WireError::Oversized(_))));
        let mut pending = vec![0xff, 0xff, 0xff, 0xff, 0x00];
        let (frames, err) = drain_frames(&mut pending);
        assert!(frames.is_empty());
        assert!(matches!(err, Some(WireError::Oversized(_))));
    }

    #[test]
    fn drain_keeps_partial_tail() {
        let a = encode_request(&Request::ListTopologies);
        let b = encode_request(&Request::Reload);
        let mut buf = Vec::new();
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        buf.extend_from_slice(&[3, 0, 0, 0, 1]); // incomplete third frame
        let (frames, err) = drain_frames(&mut buf);
        assert!(err.is_none());
        assert_eq!(frames, vec![a, b]);
        assert_eq!(buf, vec![3, 0, 0, 0, 1]);
    }

    #[test]
    fn drain_reports_oversized_tail_but_keeps_good_frames() {
        let a = encode_request(&Request::MetricsSnapshot);
        let mut buf = Vec::new();
        write_frame(&mut buf, &a).unwrap();
        buf.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0x00]);
        let (frames, err) = drain_frames(&mut buf);
        assert_eq!(frames, vec![a]);
        assert!(matches!(err, Some(WireError::Oversized(_))));
    }

    #[test]
    fn eof_mid_frame_is_typed() {
        let mut short: &[u8] = &[10, 0, 0, 0, 1, 2];
        assert!(matches!(
            read_frame(&mut short),
            Err(WireError::UnexpectedEof)
        ));
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Ok(None)));
    }
}
