//! Thin client for `mctopd`, the topology-as-a-service daemon.
//!
//! The paper's workflow is *infer once, store, load everywhere*; the
//! daemon is the "everywhere" for processes that do not link the MCTOP
//! workspace. This crate is the client half of that split: the
//! [`wire`] module defines the versioned, length-prefixed frame
//! protocol (shared with the server crate, which depends on this one),
//! and [`Client`] is a small blocking client over a Unix domain
//! socket.
//!
//! ```no_run
//! let mut client = mctop_client::Client::connect("/tmp/mctopd.sock").unwrap();
//! let latency = client.query("ivy", "latency", &["0".into(), "20".into()]).unwrap();
//! // Byte-identical to `mct query ivy latency 0 20`.
//! print!("{latency}");
//! ```
//!
//! Framing, versioning rules, and the error-frame catalog are
//! documented in `docs/SERVING.md`.

#![deny(missing_docs)]

pub mod client;
pub mod wire;

pub use client::{
    Client,
    ClientError, //
};
pub use wire::{
    ErrorCode,
    Request,
    Response,
    WireError,
    PROTO_VERSION, //
};
