//! A blocking `mctopd` client over a Unix domain socket.

use std::fmt;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::wire::{
    self,
    ErrorCode,
    Request,
    Response,
    WireError,
    PROTO_VERSION, //
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect to the socket.
    Connect(std::io::Error),
    /// A frame could not be read, written, or decoded.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server {
        /// The server's error class.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server answered with a frame the protocol does not allow
    /// at this point (e.g. `Ok` where `HelloOk` was required).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connecting to mctopd: {e}"),
            ClientError::Wire(e) => write!(f, "wire protocol: {e}"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A connected, version-negotiated `mctopd` client.
///
/// One request at a time via the typed methods, or several pipelined
/// requests per round trip via [`Client::batch`]. The client is
/// blocking and not `Sync`; concurrency means one client per thread.
#[derive(Debug)]
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a server socket and negotiates [`PROTO_VERSION`].
    pub fn connect(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        Client::connect_version(path, PROTO_VERSION)
    }

    /// Connects offering an explicit protocol version (tests use this
    /// to exercise the mismatch path).
    pub fn connect_version(path: impl AsRef<Path>, version: u16) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(path.as_ref()).map_err(ClientError::Connect)?;
        let mut client = Client { stream };
        match client.roundtrip(&Request::Hello { version })? {
            Response::HelloOk { .. } => Ok(client),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            Response::Ok { .. } => Err(ClientError::Protocol(
                "expected HelloOk to the version handshake".into(),
            )),
        }
    }

    /// Sends one request frame without reading a response (tests and
    /// the batch path build on this).
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let payload = wire::encode_request(req);
        wire::write_frame(&mut self.stream, &payload)?;
        self.stream.flush().map_err(WireError::Io)?;
        Ok(())
    }

    /// Reads one response frame; a server-side close is a
    /// [`WireError::UnexpectedEof`].
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let payload = wire::read_frame(&mut self.stream)?.ok_or(WireError::UnexpectedEof)?;
        Ok(wire::decode_response(&payload)?)
    }

    /// One request, one response. The typed helpers below are usually
    /// nicer; this is the raw form tests and benchmarks build on.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()
    }

    /// Sends every request back to back, then reads the responses in
    /// order — one write burst, one read burst. The server answers a
    /// pipelined burst as a batch (see `docs/SERVING.md`).
    pub fn batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, ClientError> {
        let mut burst = Vec::new();
        for req in reqs {
            let payload = wire::encode_request(req);
            wire::write_frame(&mut burst, &payload)?;
        }
        self.stream
            .write_all(&burst)
            .and_then(|()| self.stream.flush())
            .map_err(WireError::Io)?;
        (0..reqs.len()).map(|_| self.recv()).collect()
    }

    fn expect_body(&mut self, req: &Request) -> Result<Vec<u8>, ClientError> {
        match self.roundtrip(req)? {
            Response::Ok { body } => Ok(body),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
            Response::HelloOk { .. } => Err(ClientError::Protocol(
                "unexpected HelloOk outside the handshake".into(),
            )),
        }
    }

    fn expect_text(&mut self, req: &Request) -> Result<String, ClientError> {
        let body = self.expect_body(req)?;
        String::from_utf8(body).map_err(|_| ClientError::Wire(WireError::BadUtf8))
    }

    /// The server's topology names, rendered exactly like `mct list`.
    pub fn list_topologies(&mut self) -> Result<String, ClientError> {
        self.expect_text(&Request::ListTopologies)
    }

    /// Answers one `mct query`-vocabulary query, byte-identical to the
    /// local CLI.
    pub fn query(
        &mut self,
        desc: &str,
        query: &str,
        args: &[String],
    ) -> Result<String, ClientError> {
        self.expect_text(&Request::Query {
            desc: desc.into(),
            query: query.into(),
            args: args.to_vec(),
        })
    }

    /// A placement block (`Placement::render()`), byte-identical to
    /// the direct library call. `workers == 0` means every context.
    pub fn placement(
        &mut self,
        desc: &str,
        policy: &str,
        workers: u32,
    ) -> Result<String, ClientError> {
        self.expect_text(&Request::Placement {
            desc: desc.into(),
            policy: policy.into(),
            workers,
        })
    }

    /// An allocation plan block (`AllocPlan::render()`), byte-identical
    /// to the direct library call. `workers == 0` means every context.
    pub fn alloc_plan(
        &mut self,
        desc: &str,
        policy: &str,
        workers: u32,
    ) -> Result<String, ClientError> {
        self.expect_text(&Request::AllocPlan {
            desc: desc.into(),
            policy: policy.into(),
            workers,
        })
    }

    /// The server's live counters as JSON:
    /// `{"runtime": MetricsSnapshot, "server": ServerSnapshot}`.
    pub fn metrics_snapshot(&mut self) -> Result<String, ClientError> {
        self.expect_text(&Request::MetricsSnapshot)
    }

    /// Admin: makes the server drop its memoized topologies and
    /// re-load them from the description source on next use.
    pub fn reload(&mut self) -> Result<(), ClientError> {
        self.expect_body(&Request::Reload).map(|_| ())
    }

    /// Admin: asks the server to shut down gracefully. The server
    /// answers this frame, then stops accepting and drains.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.expect_body(&Request::Shutdown).map(|_| ())
    }
}
