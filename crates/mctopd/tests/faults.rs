//! Fault injection: the degradation contract of the serving path.
//!
//! Each test wounds the server in one specific way — a vanishing
//! client, a reload racing in-flight requests, a second daemon on the
//! same socket, a shutdown with clients connected, raw garbage on the
//! wire — and then proves the server still answers everyone else
//! correctly.

use std::io::{
    Read,
    Write, //
};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{
    AtomicUsize,
    Ordering, //
};

use mctop_client::wire::{
    self,
    Request, //
};
use mctop_client::{
    Client,
    ClientError,
    ErrorCode,
    Response,
    PROTO_VERSION, //
};
use mctopd::{
    ServeError,
    Server,
    ServerCfg, //
};

fn sock_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "mctopd-fault-{}-{tag}-{n}.sock",
        std::process::id()
    ))
}

fn start(tag: &str) -> (mctopd::ServerHandle, PathBuf) {
    let server = Server::bind(ServerCfg::new(sock_path(tag))).unwrap();
    let sock = server.socket_path().to_path_buf();
    (server.start(), sock)
}

/// A healthy request on a fresh connection: the liveness probe every
/// fault test ends with.
fn assert_still_serving(sock: &PathBuf) {
    let mut client = Client::connect(sock).unwrap();
    let text = client.query("ivy", "summary", &[]).unwrap();
    assert!(text.ends_with('\n') && !text.is_empty());
}

#[test]
fn client_disconnect_mid_request_leaves_server_healthy() {
    let (handle, sock) = start("disc");

    // Write a Hello and then *half* a Query frame, then vanish.
    {
        let mut raw = UnixStream::connect(&sock).unwrap();
        let hello = wire::encode_request(&Request::Hello {
            version: PROTO_VERSION,
        });
        wire::write_frame(&mut raw, &hello).unwrap();
        let mut hello_ok = [0u8; 7];
        raw.read_exact(&mut hello_ok).unwrap();

        let query = wire::encode_request(&Request::Query {
            desc: "ivy".into(),
            query: "summary".into(),
            args: vec![],
        });
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &query).unwrap();
        raw.write_all(&framed[..framed.len() / 2]).unwrap();
        // Drop: EOF lands mid-frame on the server.
    }

    // Give the handler a moment to observe the EOF, then verify the
    // abandonment was counted and service continues.
    for _ in 0..100 {
        if handle.metrics().server_snapshot().disconnects_mid_request > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(
        handle.metrics().server_snapshot().disconnects_mid_request,
        1
    );
    assert_still_serving(&sock);
    handle.stop();
}

#[test]
fn reload_while_requests_in_flight() {
    let (handle, sock) = start("reload");

    // Hammer queries from several clients while another client reloads
    // the registry repeatedly. In-flight requests hold their
    // `Arc<TopoView>` across the swap, so every answer stays correct.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..8)
        .map(|_| {
            let sock = sock.clone();
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(&sock).unwrap();
                let want = client.query("ivy", "summary", &[]).unwrap();
                let mut served = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let got = client.query("ivy", "summary", &[]).unwrap();
                    assert_eq!(got, want, "answer changed across a reload");
                    served += 1;
                }
                served
            })
        })
        .collect();

    let mut admin = Client::connect(&sock).unwrap();
    for _ in 0..50 {
        admin.reload().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total: u32 = workers.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(total > 0, "workers never got a request through");

    let snap = handle.metrics().server_snapshot();
    assert_eq!(snap.reloads, 50);
    assert_eq!(snap.error_responses, 0, "reload broke an in-flight request");
    handle.stop();
}

#[test]
fn double_start_on_live_socket_is_refused() {
    let (handle, sock) = start("double");

    match Server::bind(ServerCfg::new(sock.clone())) {
        Err(ServeError::AlreadyRunning(p)) => assert_eq!(p, sock),
        Err(other) => panic!("second bind: expected AlreadyRunning, got {other}"),
        Ok(_) => panic!("second bind on a live socket succeeded"),
    }
    // The refusal did not disturb the running daemon.
    assert_still_serving(&sock);
    handle.stop();
}

#[test]
fn stale_socket_file_is_reclaimed() {
    let sock = sock_path("stale");
    // A socket file with no listener behind it — what a SIGKILLed
    // daemon leaves.
    drop(std::os::unix::net::UnixListener::bind(&sock).unwrap());
    assert!(sock.exists(), "stale socket file missing");

    let server = Server::bind(ServerCfg::new(sock.clone())).unwrap();
    let handle = server.start();
    assert_still_serving(&sock);
    handle.stop();
    assert!(!sock.exists(), "socket file not removed on shutdown");
}

#[test]
fn shutdown_with_clients_connected() {
    let (handle, sock) = start("shutdown");

    // Idle clients parked in a blocking read...
    let idle: Vec<Client> = (0..4).map(|_| Client::connect(&sock).unwrap()).collect();
    // ...and one client that requests the shutdown itself.
    let mut admin = Client::connect(&sock).unwrap();
    admin.shutdown_server().unwrap();

    // join() must complete even with idle connections open: the
    // server unblocks their reads rather than waiting for them.
    handle.join();
    assert!(!sock.exists(), "socket file survived shutdown");

    // New connections are refused once the server is gone.
    assert!(matches!(
        Client::connect(&sock),
        Err(ClientError::Connect(_))
    ));
    drop(idle);
    drop(admin);
}

#[test]
fn version_mismatch_gets_typed_error_then_close() {
    let (handle, sock) = start("version");

    match Client::connect_version(&sock, PROTO_VERSION + 7) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::VersionMismatch);
            assert!(message.contains(&format!("v{PROTO_VERSION}")));
        }
        Err(other) => panic!("expected a VersionMismatch error, got {other}"),
        Ok(_) => panic!("mismatched Hello was accepted"),
    }
    assert_eq!(handle.metrics().server_snapshot().version_mismatches, 1);
    assert_still_serving(&sock);
    handle.stop();
}

#[test]
fn garbage_frame_gets_error_and_close_without_poisoning() {
    let (handle, sock) = start("garbage");

    // Handshake properly, then send an unknown tag.
    let mut raw = UnixStream::connect(&sock).unwrap();
    let hello = wire::encode_request(&Request::Hello {
        version: PROTO_VERSION,
    });
    wire::write_frame(&mut raw, &hello).unwrap();
    let mut hello_ok = [0u8; 7];
    raw.read_exact(&mut hello_ok).unwrap();

    wire::write_frame(&mut raw, &[0x7f, 1, 2, 3]).unwrap();
    let payload = wire::read_frame(&mut raw).unwrap().unwrap();
    match wire::decode_response(&payload).unwrap() {
        Response::Err { code, .. } => assert_eq!(code, ErrorCode::MalformedFrame),
        other => panic!("expected an error frame, got {other:?}"),
    }
    // The server closed the connection: next read is EOF.
    assert!(matches!(wire::read_frame(&mut raw), Ok(None)));

    assert!(handle.metrics().server_snapshot().protocol_errors >= 1);
    assert_still_serving(&sock);
    handle.stop();
}

#[test]
fn hello_must_be_first_and_only_first() {
    let (handle, sock) = start("hello");

    // A non-Hello first frame is a protocol violation.
    let mut raw = UnixStream::connect(&sock).unwrap();
    let req = wire::encode_request(&Request::ListTopologies);
    wire::write_frame(&mut raw, &req).unwrap();
    let payload = wire::read_frame(&mut raw).unwrap().unwrap();
    match wire::decode_response(&payload).unwrap() {
        Response::Err { code, .. } => assert_eq!(code, ErrorCode::MalformedFrame),
        other => panic!("expected an error frame, got {other:?}"),
    }

    // A second Hello after the handshake is a BadRequest (the
    // connection survives).
    let mut client = Client::connect(&sock).unwrap();
    let resp = client
        .roundtrip(&Request::Hello {
            version: PROTO_VERSION,
        })
        .unwrap();
    match resp {
        Response::Err { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    let text = client.query("ivy", "summary", &[]).unwrap();
    assert!(!text.is_empty());

    assert_still_serving(&sock);
    handle.stop();
}

#[test]
fn oversized_length_prefix_is_cut_off() {
    let (handle, sock) = start("oversize");

    let mut raw = UnixStream::connect(&sock).unwrap();
    let hello = wire::encode_request(&Request::Hello {
        version: PROTO_VERSION,
    });
    wire::write_frame(&mut raw, &hello).unwrap();
    let mut hello_ok = [0u8; 7];
    raw.read_exact(&mut hello_ok).unwrap();

    // A hostile length prefix: 4 GiB frame incoming, allegedly.
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    raw.write_all(&[0u8; 64]).unwrap();
    let payload = wire::read_frame(&mut raw).unwrap().unwrap();
    match wire::decode_response(&payload).unwrap() {
        Response::Err { code, .. } => assert_eq!(code, ErrorCode::MalformedFrame),
        other => panic!("expected an error frame, got {other:?}"),
    }
    assert!(matches!(wire::read_frame(&mut raw), Ok(None)));

    assert_still_serving(&sock);
    handle.stop();
}
