//! Topology-as-a-service: the MCTOP daemon library.
//!
//! `mctopd` turns the `mct` query surface into a long-running server:
//! one process loads and memoizes every machine description once
//! (`Arc<TopoView>` per machine), then answers `ListTopologies`,
//! `Query`, `Placement`, `AllocPlan` and `MetricsSnapshot` requests
//! from any number of clients over a Unix domain socket — the wire
//! protocol is defined in the `mctop-client` crate and responses are
//! byte-identical to what the CLI prints locally.
//!
//! The crate splits into:
//!
//! - [`eval`]: request evaluation shared with the `mct` CLI — the
//!   single source of the exact output text, which is what makes the
//!   byte-identity guarantee hold by construction.
//! - [`server`]: socket handling, the version handshake, request
//!   batching onto the persistent [`mctop_runtime::Executor`], and the
//!   graceful-degradation paths (version mismatch, malformed frames,
//!   client disconnects, reloads, shutdown).
//!
//! See `docs/SERVING.md` for the protocol and operational story.

#![deny(missing_docs)]

pub mod eval;
pub mod server;

pub use server::{
    DescSource,
    ServeError,
    Server,
    ServerCfg,
    ServerHandle, //
};
