//! The `mctopd` binary: bind the serving socket and run until a
//! `Shutdown` request (or SIGTERM kills the process).

use std::path::PathBuf;
use std::process::ExitCode;

use mctopd::{
    DescSource,
    Server,
    ServerCfg, //
};

const USAGE: &str = "\
mctopd — topology-as-a-service daemon

USAGE:
    mctopd --socket <path> [--descs <dir>] [--pin <machine>]
           [--workers <n>] [--os-pin]

OPTIONS:
    --socket <path>   Unix socket to serve on (required)
    --descs <dir>     load descriptions from <dir>/<name>.mct.json
                      (default: the compiled-in library)
    --pin <machine>   machine whose topology pins the worker team
                      (default: the first machine in the source)
    --workers <n>     executor worker count (default: host parallelism)
    --os-pin          pin worker threads to host CPUs
    --help            print this help
";

fn parse_args() -> Result<ServerCfg, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        std::process::exit(0);
    }
    let mut take = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            return None;
        }
        args.remove(i);
        Some(args.remove(i))
    };
    let socket = take("--socket").ok_or("--socket <path> is required")?;
    let descs = take("--descs");
    let pin = take("--pin");
    let workers = match take("--workers") {
        Some(s) => Some(
            s.parse::<usize>()
                .map_err(|_| format!("invalid worker count `{s}`"))?,
        ),
        None => None,
    };
    let os_pin = if let Some(i) = args.iter().position(|a| a == "--os-pin") {
        args.remove(i);
        true
    } else {
        false
    };
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    Ok(ServerCfg {
        socket: PathBuf::from(socket),
        source: match descs {
            Some(dir) => DescSource::Dir(PathBuf::from(dir)),
            None => DescSource::Shipped,
        },
        pin_desc: pin,
        workers,
        os_pin,
    })
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("mctopd: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let socket = cfg.socket.clone();
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mctopd: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("mctopd: listening on {}", socket.display());
    server.start().join();
    eprintln!("mctopd: shut down");
    ExitCode::SUCCESS
}
