//! Request evaluation, shared by the daemon and the `mct` CLI.
//!
//! Every function returns the *exact* text the corresponding CLI
//! command prints — the daemon serves these strings verbatim, which is
//! what makes remote responses byte-identical to direct library calls
//! (enforced end to end by `tests/serving_equivalence.rs`).

use std::fmt::Write as _;
use std::sync::Arc;

use mctop::registry::Registry;
use mctop::TopoView;
use mctop_alloc::{
    AllocCfg,
    AllocPlan,
    AllocPolicy, //
};
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};

/// Why a request could not be answered. Mirrors the CLI's split:
/// `Usage` is a malformed request (exit 2 locally, `BadRequest` on the
/// wire), `Failed` is a request that ran and failed (exit 1 locally,
/// also `BadRequest` on the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The request shape is wrong (unknown query, bad argument count,
    /// unparsable argument).
    Usage(String),
    /// The request was well-formed but unanswerable (out-of-range id,
    /// unresolvable placement).
    Failed(String),
}

impl EvalError {
    /// The human-readable message, independent of the class.
    pub fn message(&self) -> &str {
        match self {
            EvalError::Usage(m) | EvalError::Failed(m) => m,
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, EvalError> {
    s.parse()
        .map_err(|_| EvalError::Usage(format!("invalid {what} `{s}`")))
}

/// The `mct list` body: one line per topology the registry resolves.
pub fn list_text(registry: &Registry) -> Result<String, EvalError> {
    let mut out = String::new();
    for name in registry
        .names()
        .map_err(|e| EvalError::Failed(e.to_string()))?
    {
        let view = registry
            .view(&name)
            .map_err(|e| EvalError::Failed(e.to_string()))?;
        let _ = writeln!(
            out,
            "{name:<18} {} sockets, {} cores, {} contexts",
            view.num_sockets(),
            view.num_cores(),
            view.num_hwcs()
        );
    }
    Ok(out)
}

/// A placement block: the Fig. 7 `Placement::print()` text for
/// `workers` threads under a paper-style policy name
/// (case-insensitive).
pub fn placement_text(view: &TopoView, policy: &str, workers: usize) -> Result<String, EvalError> {
    let policy = Policy::from_name(policy)
        .ok_or_else(|| EvalError::Usage(format!("unknown placement policy `{policy}`")))?;
    let place = Placement::with_view(view, policy, PlaceOpts::threads(workers))
        .map_err(|e| EvalError::Failed(e.to_string()))?;
    Ok(place.print())
}

/// An allocation plan block: `AllocPlan::resolve(...).render()` for
/// `workers` RR_CORE-placed workers.
pub fn alloc_plan_text(view: &TopoView, policy: &str, workers: usize) -> Result<String, EvalError> {
    let policy: AllocPolicy = policy.parse().map_err(EvalError::Usage)?;
    // RR_CORE: the round-robin hand-out spreads workers across every
    // socket, so the plan shows each socket's stripes.
    let place = Placement::with_view(view, Policy::RrCore, PlaceOpts::threads(workers))
        .map_err(|e| EvalError::Failed(e.to_string()))?;
    let plan = AllocPlan::resolve(view, &place, &policy, &AllocCfg::default())
        .map_err(|e| EvalError::Failed(e.to_string()))?;
    Ok(plan.render())
}

/// Answers one query from the `mct query` vocabulary, returning the
/// exact text the CLI prints (trailing newline included).
///
/// The `metrics` query is deliberately *not* answerable here: locally
/// it runs a deterministic workload harness (CLI-only), remotely the
/// daemon serves its live counters via the `MetricsSnapshot` request.
pub fn query_text(view: &TopoView, query: &str, args: &[String]) -> Result<String, EvalError> {
    let int = |what: &str| -> Result<usize, EvalError> {
        let [s] = args else {
            return Err(EvalError::Usage(format!("`{query}` takes one {what}")));
        };
        parse(s, what)
    };
    let pair = |what: &str| -> Result<(usize, usize), EvalError> {
        let [a, b] = args else {
            return Err(EvalError::Usage(format!("`{query}` takes two {what}s")));
        };
        Ok((parse(a, what)?, parse(b, what)?))
    };
    let check_socket = |s: usize| -> Result<usize, EvalError> {
        if s < view.num_sockets() {
            Ok(s)
        } else {
            Err(EvalError::Failed(format!(
                "socket {s} out of range (machine has {})",
                view.num_sockets()
            )))
        }
    };
    let check_hwc = |h: usize| -> Result<usize, EvalError> {
        if h < view.num_hwcs() {
            Ok(h)
        } else {
            Err(EvalError::Failed(format!(
                "context {h} out of range (machine has {})",
                view.num_hwcs()
            )))
        }
    };
    let list = |ids: &[usize]| {
        ids.iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    let line = |s: String| Ok(s + "\n");

    match query {
        "summary" => line(view.summary()),
        "latency" => {
            let (a, b) = pair("context")?;
            line(view.get_latency(check_hwc(a)?, check_hwc(b)?).to_string())
        }
        "socket-latency" => {
            let (a, b) = pair("socket")?;
            line(
                view.socket_latency(check_socket(a)?, check_socket(b)?)
                    .to_string(),
            )
        }
        "closest" => {
            let s = check_socket(int("socket")?)?;
            line(list(view.closest_sockets(s)))
        }
        "sockets-by-bw" => line(list(view.sockets_by_local_bandwidth())),
        "walk" => line(list(view.socket_order_bandwidth_proximity())),
        "max-latency" => line(view.max_latency().to_string()),
        "socket-of" => line(view.socket_of(check_hwc(int("context")?)?).to_string()),
        "core-of" => line(view.core_of(check_hwc(int("context")?)?).to_string()),
        "node-of" => match view.node_of(check_hwc(int("context")?)?) {
            Some(node) => line(node.to_string()),
            None => line("unknown".to_string()),
        },
        "hwcs" => {
            let (s, cores_first) = match args {
                [s] => (parse::<usize>(s, "socket")?, false),
                [s, mode] if mode == "cores-first" => (parse::<usize>(s, "socket")?, true),
                _ => {
                    return Err(EvalError::Usage(
                        "`hwcs` takes a socket and optionally `cores-first`".into(),
                    ))
                }
            };
            let s = check_socket(s)?;
            let ids = if cores_first {
                view.socket_hwcs_cores_first(s)
            } else {
                view.socket_hwcs_compact(s)
            };
            line(list(ids))
        }
        "alloc-plan" => {
            let (policy, threads) = match args {
                [p] => (p, None),
                [p, t] => (p, Some(parse::<usize>(t, "thread count")?)),
                _ => {
                    return Err(EvalError::Usage(
                        "`alloc-plan` takes a policy and optionally a thread count".into(),
                    ))
                }
            };
            alloc_plan_text(view, policy, threads.unwrap_or(view.num_hwcs()))
        }
        other => Err(EvalError::Usage(format!(
            "unknown query `{other}` (see `mct help`)"
        ))),
    }
}

/// Resolves a machine name against a registry, mapping failures to a
/// request-level error (the daemon's `BadRequest`).
pub fn resolve_view(registry: &Registry, desc: &str) -> Result<Arc<TopoView>, EvalError> {
    registry
        .view(desc)
        .map_err(|e| EvalError::Failed(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_text_answers_the_vocabulary() {
        let reg = Registry::shipped();
        let view = reg.view("ivy").unwrap();
        assert_eq!(
            query_text(&view, "latency", &["0".into(), "20".into()]).unwrap(),
            format!("{}\n", view.get_latency(0, 20))
        );
        assert_eq!(
            query_text(&view, "summary", &[]).unwrap(),
            format!("{}\n", view.summary())
        );
        assert!(query_text(&view, "walk", &[]).unwrap().ends_with('\n'));
    }

    #[test]
    fn errors_keep_their_class() {
        let reg = Registry::shipped();
        let view = reg.view("ivy").unwrap();
        assert!(matches!(
            query_text(&view, "nope", &[]),
            Err(EvalError::Usage(_))
        ));
        assert!(matches!(
            query_text(&view, "latency", &["0".into(), "999999".into()]),
            Err(EvalError::Failed(_))
        ));
        assert!(matches!(
            query_text(&view, "latency", &["x".into(), "1".into()]),
            Err(EvalError::Usage(_))
        ));
    }

    #[test]
    fn list_covers_every_shipped_name() {
        let reg = Registry::shipped();
        let text = list_text(&reg).unwrap();
        for name in mctop::registry::shipped_names() {
            assert!(text.contains(name), "{name} missing from list");
        }
    }

    #[test]
    fn placement_and_alloc_render() {
        let reg = Registry::shipped();
        let view = reg.view("ivy").unwrap();
        let p = placement_text(&view, "rr_core", 4).unwrap();
        assert!(p.contains("MCTOP_PLACE_RR_CORE"));
        let a = alloc_plan_text(&view, "local", 4).unwrap();
        assert!(!a.is_empty());
        assert!(matches!(
            placement_text(&view, "bogus", 4),
            Err(EvalError::Usage(_))
        ));
    }
}
