//! The `mctopd` server: one shared `Arc<TopoView>` per machine,
//! served to many concurrent clients over a Unix domain socket.
//!
//! # Structure
//!
//! - An **accept thread** owns the `UnixListener` and spawns one
//!   handler thread per connection (I/O threads are cheap; they block
//!   on `read`).
//! - Request **execution** happens on the shared persistent
//!   [`Executor`]: each decoded batch becomes one fork-join scope whose
//!   tasks run on the placement-pinned worker team. I/O threads only
//!   frame and copy bytes.
//! - Topology state is the memoizing [`Registry`]: one
//!   `Arc<TopoView>` per machine, handed to request tasks by clone.
//!   A `Reload` admin request swaps the cache ([`Registry::clear`]);
//!   requests already holding an `Arc` finish on the old view, new
//!   requests load fresh — no locks on the read path beyond the
//!   registry's read lock.
//!
//! # Degradation contract (verified by `tests/faults.rs`)
//!
//! - Protocol-version mismatch: typed error frame, connection closed.
//! - Malformed frame: best-effort error frame, connection closed;
//!   shared state untouched.
//! - Client disconnect mid-request: the request is abandoned, the
//!   handler exits, the server keeps serving everyone else.
//! - Second daemon on a live socket: [`ServeError::AlreadyRunning`].
//!   A *stale* socket file (no listener behind it) is removed and
//!   rebound.
//! - Shutdown with clients connected: in-flight batches are answered,
//!   idle connections closed, every thread joined, socket file
//!   removed.

use std::io::{
    self,
    Read,
    Write, //
};
use std::os::unix::net::{
    UnixListener,
    UnixStream, //
};
use std::panic::{
    catch_unwind,
    AssertUnwindSafe, //
};
use std::path::{
    Path,
    PathBuf, //
};
use std::sync::atomic::{
    AtomicBool,
    Ordering, //
};
use std::sync::{
    Arc,
    Mutex, //
};
use std::thread::JoinHandle;

use mctop::registry::Registry;
use mctop_client::wire::{
    self,
    ErrorCode,
    Request,
    Response,
    WireError,
    PROTO_VERSION, //
};
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};
use mctop_runtime::{
    ExecCfg,
    Executor,
    Metrics,
    MetricsSnapshot,
    ServerRequestKind,
    ServerSnapshot, //
};
use serde::Serialize;

use crate::eval::{
    self,
    EvalError, //
};

/// Read chunk size for connection handlers.
const READ_CHUNK: usize = 64 * 1024;

/// Where the server loads descriptions from.
#[derive(Debug, Clone)]
pub enum DescSource {
    /// The compiled-in `descs/` library.
    Shipped,
    /// `<dir>/<name>.mct.json` files.
    Dir(PathBuf),
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerCfg {
    /// Path of the Unix domain socket to bind.
    pub socket: PathBuf,
    /// Description source backing the registry.
    pub source: DescSource,
    /// Machine whose topology pins the worker team (`None`: the first
    /// registry name).
    pub pin_desc: Option<String>,
    /// Executor worker count (`None`: host parallelism, capped at 8
    /// and at the pin machine's context count).
    pub workers: Option<usize>,
    /// Pin worker threads to host CPUs (off by default: the modelled
    /// machines rarely match the host).
    pub os_pin: bool,
}

impl ServerCfg {
    /// A default configuration over the shipped description library.
    pub fn new(socket: impl Into<PathBuf>) -> ServerCfg {
        ServerCfg {
            socket: socket.into(),
            source: DescSource::Shipped,
            pin_desc: None,
            workers: None,
            os_pin: false,
        }
    }
}

/// Why the server could not start or run.
#[derive(Debug)]
pub enum ServeError {
    /// A live daemon already answers on the socket.
    AlreadyRunning(PathBuf),
    /// Binding the socket failed.
    Bind(io::Error),
    /// Registry or executor setup failed.
    Setup(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::AlreadyRunning(p) => {
                write!(f, "a daemon is already serving on {}", p.display())
            }
            ServeError::Bind(e) => write!(f, "binding socket: {e}"),
            ServeError::Setup(msg) => write!(f, "server setup: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The JSON body of a `MetricsSnapshot` response: the pinned runtime
/// schema next to the serving-path bucket.
#[derive(Serialize)]
struct ServingSnapshot {
    runtime: MetricsSnapshot,
    server: ServerSnapshot,
}

/// Shared server state: what every connection handler sees.
struct State {
    registry: Registry,
    exec: Executor,
    metrics: Arc<Metrics>,
    shutting_down: AtomicBool,
    /// `try_clone` handles of live connections, used to close their
    /// read sides on shutdown (which unblocks idle handlers without
    /// cutting off an in-flight response).
    conns: Mutex<Vec<UnixStream>>,
    socket_path: PathBuf,
}

impl State {
    /// Flips the shutdown flag once; unblocks the acceptor and every
    /// idle connection handler. In-flight batches still finish: only
    /// the *read* sides are shut down.
    fn initiate_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock `accept` with a throwaway connection.
        let _ = UnixStream::connect(&self.socket_path);
        let conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        for stream in conns.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
}

/// A bound, not-yet-accepting server. [`Server::start`] begins serving.
pub struct Server {
    listener: UnixListener,
    state: Arc<State>,
}

/// A running server. Stop it with [`ServerHandle::shutdown`] (or a
/// client `Shutdown` request), then [`ServerHandle::join`].
pub struct ServerHandle {
    state: Arc<State>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the socket and arms the worker team.
    ///
    /// If the socket path is taken, connects to it to distinguish a
    /// live daemon ([`ServeError::AlreadyRunning`]) from a stale file
    /// left by a crash (removed and rebound).
    pub fn bind(cfg: ServerCfg) -> Result<Server, ServeError> {
        let registry = match &cfg.source {
            DescSource::Shipped => Registry::shipped(),
            DescSource::Dir(dir) => Registry::with_dir(dir.clone()),
        };
        let pin_name = match &cfg.pin_desc {
            Some(name) => name.clone(),
            None => registry
                .names()
                .map_err(|e| ServeError::Setup(e.to_string()))?
                .first()
                .cloned()
                .ok_or_else(|| ServeError::Setup("description source is empty".into()))?,
        };
        let view = registry
            .view(&pin_name)
            .map_err(|e| ServeError::Setup(format!("pin topology `{pin_name}`: {e}")))?;
        let workers = cfg
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get().min(8))
                    .unwrap_or(1)
            })
            .min(view.num_hwcs())
            .max(1);
        let placement = Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(workers))
            .map_err(|e| ServeError::Setup(format!("pin placement: {e}")))?;
        let metrics = Metrics::handle();
        let exec = Executor::with_metrics(
            Some(&view),
            &placement,
            ExecCfg {
                workers: None,
                os_pin: cfg.os_pin,
            },
            Arc::clone(&metrics),
        );

        let listener = match UnixListener::bind(&cfg.socket) {
            Ok(l) => l,
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                if UnixStream::connect(&cfg.socket).is_ok() {
                    return Err(ServeError::AlreadyRunning(cfg.socket));
                }
                // Nobody answers: a stale socket file from a dead
                // daemon. Reclaim it.
                std::fs::remove_file(&cfg.socket).map_err(ServeError::Bind)?;
                UnixListener::bind(&cfg.socket).map_err(ServeError::Bind)?
            }
            Err(e) => return Err(ServeError::Bind(e)),
        };

        Ok(Server {
            listener,
            state: Arc::new(State {
                registry,
                exec,
                metrics,
                shutting_down: AtomicBool::new(false),
                conns: Mutex::new(Vec::new()),
                socket_path: cfg.socket,
            }),
        })
    }

    /// The socket path this server is bound to.
    pub fn socket_path(&self) -> &Path {
        &self.state.socket_path
    }

    /// Starts the accept loop on a background thread.
    pub fn start(self) -> ServerHandle {
        let state = Arc::clone(&self.state);
        let listener = self.listener;
        let accept = std::thread::Builder::new()
            .name("mctopd-accept".into())
            .spawn(move || accept_loop(listener, state))
            .expect("spawn accept thread");
        ServerHandle {
            state: self.state,
            accept: Some(accept),
        }
    }
}

impl ServerHandle {
    /// Asks the server to stop: equivalent to a client `Shutdown`
    /// request. Does not wait; pair with [`ServerHandle::join`].
    pub fn shutdown(&self) {
        self.state.initiate_shutdown();
    }

    /// Waits until the server has fully stopped: every connection
    /// handler joined, the executor shut down, the socket file removed.
    pub fn join(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }

    /// Shuts down and waits. Convenience for tests and the CLI.
    pub fn stop(self) {
        self.shutdown();
        self.join();
    }

    /// The metrics handle the server records into.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.state.metrics
    }

    /// The socket path the server is bound to.
    pub fn socket_path(&self) -> &Path {
        &self.state.socket_path
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.state.initiate_shutdown();
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: UnixListener, state: Arc<State>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        state.metrics.record_conn_opened();
        if let Ok(clone) = stream.try_clone() {
            state
                .conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(clone);
        }
        let state = Arc::clone(&state);
        let handler = std::thread::Builder::new()
            .name("mctopd-conn".into())
            .spawn(move || {
                serve_conn(&state, stream);
                state.metrics.record_conn_closed();
            })
            .expect("spawn connection handler");
        handlers.push(handler);
    }
    // Shutdown: the flag is up. Unblock any handler still parked in a
    // blocking read (covers connections accepted after initiate_shutdown
    // walked the registry).
    {
        let conns = state.conns.lock().unwrap_or_else(|e| e.into_inner());
        for stream in conns.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    state.exec.shutdown();
    let _ = std::fs::remove_file(&state.socket_path);
}

/// How a connection ended, for the failure-class counters.
enum ConnEnd {
    /// EOF at a frame boundary, or shutdown drain.
    Clean,
    /// The client violated framing; an error frame was attempted and
    /// the connection dropped.
    ProtocolError,
    /// The client vanished mid-request or mid-response.
    Disconnect,
}

fn serve_conn(state: &State, mut stream: UnixStream) {
    let end = serve_conn_inner(state, &mut stream);
    match end {
        ConnEnd::Clean => {}
        ConnEnd::ProtocolError => state.metrics.record_protocol_error(),
        ConnEnd::Disconnect => state.metrics.record_disconnect_mid_request(),
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Writes one response frame, counting bytes and the response class.
fn write_response(state: &State, stream: &mut UnixStream, resp: &Response) -> Result<(), ()> {
    let payload = wire::encode_response(resp);
    match resp {
        Response::Ok { .. } => state.metrics.record_ok_response(),
        Response::Err { .. } => state.metrics.record_error_response(),
        Response::HelloOk { .. } => {}
    }
    state.metrics.record_bytes_written(4 + payload.len() as u64);
    wire::write_frame(stream, &payload).map_err(|_| ())
}

fn err_frame(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Err {
        code,
        message: message.into(),
    }
}

fn serve_conn_inner(state: &State, stream: &mut UnixStream) -> ConnEnd {
    let mut acc: Vec<u8> = Vec::new();

    // --- handshake: the first frame must be a matching Hello.
    let first = match next_batch(state, stream, &mut acc) {
        Ok(Some(frames)) => frames,
        Ok(None) => return ConnEnd::Clean, // connected, said nothing
        Err(end) => return end,
    };
    let mut rest = first;
    let hello = rest.remove(0);
    match wire::decode_request(&hello) {
        Ok(Request::Hello { version }) if version == PROTO_VERSION => {
            state.metrics.record_hello_ok();
            if write_response(
                state,
                stream,
                &Response::HelloOk {
                    version: PROTO_VERSION,
                },
            )
            .is_err()
            {
                return ConnEnd::Disconnect;
            }
        }
        Ok(Request::Hello { version }) => {
            state.metrics.record_version_mismatch();
            let _ = write_response(
                state,
                stream,
                &err_frame(
                    ErrorCode::VersionMismatch,
                    format!("server speaks protocol v{PROTO_VERSION}, client offered v{version}"),
                ),
            );
            return ConnEnd::Clean; // negotiated close, not a violation
        }
        Ok(_) => {
            let _ = write_response(
                state,
                stream,
                &err_frame(
                    ErrorCode::MalformedFrame,
                    "the first frame on a connection must be Hello",
                ),
            );
            return ConnEnd::ProtocolError;
        }
        Err(e) => {
            let _ = write_response(
                state,
                stream,
                &err_frame(ErrorCode::MalformedFrame, e.to_string()),
            );
            return ConnEnd::ProtocolError;
        }
    }

    // --- request loop: frames pipelined behind the Hello are the
    // first batch.
    loop {
        let frames = if rest.is_empty() {
            match next_batch(state, stream, &mut acc) {
                Ok(Some(frames)) => frames,
                Ok(None) => return ConnEnd::Clean,
                Err(end) => return end,
            }
        } else {
            std::mem::take(&mut rest)
        };

        // Decode the whole batch; a malformed frame truncates it (the
        // valid prefix is still answered) and closes the connection
        // after the responses.
        let mut requests: Vec<Request> = Vec::with_capacity(frames.len());
        let mut malformed: Option<WireError> = None;
        for frame in &frames {
            match wire::decode_request(frame) {
                Ok(req) => requests.push(req),
                Err(e) => {
                    malformed = Some(e);
                    break;
                }
            }
        }

        let (responses, saw_shutdown) = execute_batch(state, &requests);
        for resp in &responses {
            if write_response(state, stream, resp).is_err() {
                return ConnEnd::Disconnect;
            }
        }
        if stream.flush().is_err() {
            return ConnEnd::Disconnect;
        }
        if let Some(e) = malformed {
            let _ = write_response(
                state,
                stream,
                &err_frame(ErrorCode::MalformedFrame, e.to_string()),
            );
            return ConnEnd::ProtocolError;
        }
        if saw_shutdown {
            state.initiate_shutdown();
            return ConnEnd::Clean;
        }
    }
}

/// Reads until at least one complete frame is buffered, then drains
/// every complete frame already available — the pipelining batch.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (including
/// the shutdown drain), `Err` with the failure class otherwise.
fn next_batch(
    state: &State,
    stream: &mut UnixStream,
    acc: &mut Vec<u8>,
) -> Result<Option<Vec<Vec<u8>>>, ConnEnd> {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        let (frames, err) = wire::drain_frames(acc);
        if let Some(e) = err {
            // Oversized length prefix: answer what was valid, then cut.
            let _ = write_response(
                state,
                stream,
                &err_frame(ErrorCode::MalformedFrame, e.to_string()),
            );
            // The valid prefix is dropped here (not executed): framing
            // is already lost, and a client that overflows the length
            // field gets no partial service.
            let _ = frames;
            return Err(ConnEnd::ProtocolError);
        }
        if !frames.is_empty() {
            // Opportunistic scoop: grab frames that already arrived
            // without blocking, so a pipelined burst runs as one batch.
            let mut frames = frames;
            if stream.set_nonblocking(true).is_ok() {
                loop {
                    match stream.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(n) => {
                            state.metrics.record_bytes_read(n as u64);
                            acc.extend_from_slice(&chunk[..n]);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => break,
                    }
                }
                let _ = stream.set_nonblocking(false);
                let (more, err) = wire::drain_frames(acc);
                frames.extend(more);
                if let Some(e) = err {
                    // Serve the valid batch now; the poisoned tail cuts
                    // the connection on the next call.
                    acc.clear();
                    acc.extend_from_slice(&(u32::MAX).to_le_bytes());
                    let _ = e;
                }
            }
            return Ok(Some(frames));
        }
        if state.shutting_down.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if acc.is_empty() {
                    Ok(None)
                } else {
                    // EOF inside a frame: the client vanished
                    // mid-request.
                    Err(ConnEnd::Disconnect)
                };
            }
            Ok(n) => {
                state.metrics.record_bytes_read(n as u64);
                acc.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(ConnEnd::Disconnect),
        }
    }
}

/// Runs one batch on the shared executor and returns the responses in
/// request order, plus whether a `Shutdown` admin request was seen.
fn execute_batch(state: &State, requests: &[Request]) -> (Vec<Response>, bool) {
    if requests.is_empty() {
        return (Vec::new(), false);
    }
    state.metrics.record_server_batch();
    let mut slots: Vec<Option<Response>> = Vec::with_capacity(requests.len());
    slots.resize_with(requests.len(), || None);

    let scope_result = catch_unwind(AssertUnwindSafe(|| {
        state.exec.try_scope(|s| {
            for (slot, req) in slots.iter_mut().zip(requests) {
                s.spawn(move || {
                    *slot = Some(answer(state, req));
                });
            }
        })
    }));

    let responses: Vec<Response> = match scope_result {
        Ok(Ok(())) => slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    err_frame(ErrorCode::Internal, "request task did not complete")
                })
            })
            .collect(),
        Ok(Err(_shutdown)) => requests
            .iter()
            .map(|_| err_frame(ErrorCode::ShuttingDown, "server is shutting down"))
            .collect(),
        // A panicking request poisons only its own slot: the scope ran
        // every task to completion before rethrowing, so sibling
        // responses are intact.
        Err(_panic) => slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| err_frame(ErrorCode::Internal, "request handler panicked"))
            })
            .collect(),
    };
    let saw_shutdown = requests.iter().any(|r| matches!(r, Request::Shutdown));
    (responses, saw_shutdown)
}

/// Answers one request. Runs on an executor worker.
fn answer(state: &State, req: &Request) -> Response {
    let eval_err = |e: EvalError| err_frame(ErrorCode::BadRequest, e.message());
    match req {
        Request::Hello { .. } => err_frame(
            ErrorCode::BadRequest,
            "Hello is only valid as the first frame of a connection",
        ),
        Request::ListTopologies => {
            state.metrics.record_server_request(ServerRequestKind::List);
            match eval::list_text(&state.registry) {
                Ok(text) => Response::Ok {
                    body: text.into_bytes(),
                },
                Err(e) => eval_err(e),
            }
        }
        Request::Query { desc, query, args } => {
            state
                .metrics
                .record_server_request(ServerRequestKind::Query);
            if query == "metrics" {
                return err_frame(
                    ErrorCode::BadRequest,
                    "`metrics` is served by the MetricsSnapshot request",
                );
            }
            let view = match eval::resolve_view(&state.registry, desc) {
                Ok(v) => v,
                Err(e) => return eval_err(e),
            };
            match eval::query_text(&view, query, args) {
                Ok(text) => Response::Ok {
                    body: text.into_bytes(),
                },
                Err(e) => eval_err(e),
            }
        }
        Request::Placement {
            desc,
            policy,
            workers,
        } => {
            state
                .metrics
                .record_server_request(ServerRequestKind::Placement);
            let view = match eval::resolve_view(&state.registry, desc) {
                Ok(v) => v,
                Err(e) => return eval_err(e),
            };
            let n = if *workers == 0 {
                view.num_hwcs()
            } else {
                *workers as usize
            };
            match eval::placement_text(&view, policy, n) {
                Ok(text) => Response::Ok {
                    body: text.into_bytes(),
                },
                Err(e) => eval_err(e),
            }
        }
        Request::AllocPlan {
            desc,
            policy,
            workers,
        } => {
            state
                .metrics
                .record_server_request(ServerRequestKind::AllocPlan);
            let view = match eval::resolve_view(&state.registry, desc) {
                Ok(v) => v,
                Err(e) => return eval_err(e),
            };
            let n = if *workers == 0 {
                view.num_hwcs()
            } else {
                *workers as usize
            };
            match eval::alloc_plan_text(&view, policy, n) {
                Ok(text) => Response::Ok {
                    body: text.into_bytes(),
                },
                Err(e) => eval_err(e),
            }
        }
        Request::MetricsSnapshot => {
            state
                .metrics
                .record_server_request(ServerRequestKind::Metrics);
            let snap = ServingSnapshot {
                runtime: state.metrics.snapshot(),
                server: state.metrics.server_snapshot(),
            };
            match serde_json::to_string_pretty(&snap) {
                Ok(json) => Response::Ok {
                    body: (json + "\n").into_bytes(),
                },
                Err(e) => err_frame(ErrorCode::Internal, format!("serializing snapshot: {e}")),
            }
        }
        Request::Reload => {
            state
                .metrics
                .record_server_request(ServerRequestKind::Reload);
            state.registry.clear();
            Response::Ok { body: Vec::new() }
        }
        Request::Shutdown => {
            state
                .metrics
                .record_server_request(ServerRequestKind::Shutdown);
            Response::Ok { body: Vec::new() }
        }
    }
}
