//! Shared helpers for the figure harness and the Criterion benches.

use mcsim::MachineSpec;
use mctop::enrich::{
    enrich_all,
    SimEnricher, //
};
use mctop::view::TopoView;
use mctop::Mctop;

/// Infers (noiselessly) and fully enriches the topology of a preset:
/// the starting point of every experiment harness.
pub fn enriched_topology(spec: &MachineSpec) -> Mctop {
    let mut prober = mctop::backend::SimProber::noiseless(spec);
    let cfg = mctop::ProbeConfig {
        reps: 5,
        ..mctop::ProbeConfig::fast()
    };
    let mut topo = mctop::infer(&mut prober, &cfg).expect("inference succeeds on presets");
    let mut mem = SimEnricher::new(spec);
    let mut pow = SimEnricher::new(spec);
    enrich_all(&mut topo, &mut mem, &mut pow).expect("enrichment succeeds on presets");
    topo.freq_ghz = Some(spec.freq_ghz);
    topo
}

/// Infers with realistic noise and DVFS (the harness path that
/// exercises the retry machinery).
pub fn noisy_topology(spec: &MachineSpec, seed: u64) -> Mctop {
    let mut prober = mctop::backend::SimProber::new(spec, seed);
    let cfg = mctop::ProbeConfig::fast();
    mctop::infer(&mut prober, &cfg).expect("inference succeeds under default noise")
}

/// [`enriched_topology`] wrapped in a precomputed [`TopoView`] — the
/// starting point of every placement/merge harness.
pub fn enriched_view(spec: &MachineSpec) -> TopoView {
    TopoView::try_new(std::sync::Arc::new(enriched_topology(spec)))
        .expect("presets have a socket level")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enriched_topology_is_complete() {
        let spec = mcsim::presets::ivy();
        let t = enriched_topology(&spec);
        assert_eq!(t.num_sockets(), 2);
        assert!(t.power.is_some());
        assert!(t.caches.is_some());
        assert_eq!(t.freq_ghz, Some(2.8));
    }

    #[test]
    fn noisy_topology_matches_noiseless_structure() {
        let spec = mcsim::presets::synthetic_small();
        let noisy = noisy_topology(&spec, 3);
        let clean = enriched_topology(&spec);
        assert_eq!(noisy.num_sockets(), clean.num_sockets());
        assert_eq!(noisy.num_cores(), clean.num_cores());
        assert_eq!(noisy.smt(), clean.smt());
    }
}
