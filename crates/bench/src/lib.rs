//! Shared helpers for the figure harness and the Criterion benches.

use std::sync::{
    Arc,
    OnceLock, //
};

use mcsim::MachineSpec;
use mctop::view::TopoView;
use mctop::{
    Mctop,
    Registry, //
};

/// The process-wide registry over the shipped description library: one
/// parsed topology + index per machine, shared by every bench target
/// and experiment harness in the process.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::shipped)
}

/// Whether `spec` is exactly the preset of the same name — only then
/// may the shipped description stand in for a fresh inference. A
/// hand-modified spec that kept its preset name must not silently
/// resolve to the unmodified artifact.
fn is_pristine_preset(spec: &MachineSpec) -> bool {
    mcsim::presets::by_name(&spec.name).as_ref() == Some(spec)
}

/// The canonical (noiseless, fully enriched) topology of a preset: the
/// starting point of every experiment harness. Pristine presets share
/// the registry-cached `Arc` (no per-call deep clone of the model
/// arenas); anything else (hand-modified machines) gets a fresh
/// canonical inference.
pub fn enriched_topology(spec: &MachineSpec) -> Arc<Mctop> {
    if is_pristine_preset(spec) {
        if let Ok(topo) = registry().topo(&spec.name) {
            return topo;
        }
    }
    let (topo, _) = mctop::desc::canonical(spec).expect("inference succeeds on presets");
    Arc::new(topo)
}

/// Infers with realistic noise and DVFS (the harness path that
/// exercises the retry machinery).
pub fn noisy_topology(spec: &MachineSpec, seed: u64) -> Mctop {
    let mut prober = mctop::backend::SimProber::new(spec, seed);
    let cfg = mctop::ProbeConfig::fast();
    mctop::infer(&mut prober, &cfg).expect("inference succeeds under default noise")
}

/// [`enriched_topology`] wrapped in a precomputed [`TopoView`] — the
/// starting point of every placement/merge harness. Pristine preset
/// machines share the registry-cached view.
pub fn enriched_view(spec: &MachineSpec) -> Arc<TopoView> {
    if is_pristine_preset(spec) {
        if let Ok(view) = registry().view(&spec.name) {
            return view;
        }
    }
    Arc::new(TopoView::try_new(enriched_topology(spec)).expect("presets have a socket level"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enriched_topology_is_complete() {
        let spec = mcsim::presets::ivy();
        let t = enriched_topology(&spec);
        assert_eq!(t.num_sockets(), 2);
        assert!(t.power.is_some());
        assert!(t.caches.is_some());
        assert_eq!(t.freq_ghz, Some(2.8));
    }

    #[test]
    fn noisy_topology_matches_noiseless_structure() {
        let spec = mcsim::presets::synthetic_small();
        let noisy = noisy_topology(&spec, 3);
        let clean = enriched_topology(&spec);
        assert_eq!(noisy.num_sockets(), clean.num_sockets());
        assert_eq!(noisy.num_cores(), clean.num_cores());
        assert_eq!(noisy.smt(), clean.smt());
    }
}
