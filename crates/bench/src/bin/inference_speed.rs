//! Inference-speed benchmark: sequential vs parallel MCTOP-ALG
//! collection on the paper platforms, emitted as `BENCH_inference.json`
//! for the CI bench trajectory.
//!
//! Usage: `inference_speed [OUT_PATH]` (default `BENCH_inference.json`).
//!
//! Two cost views per platform and worker count:
//!
//! - **wall_ms** — measured wall-clock of the collection phase over the
//!   simulated oracle on the machine running this binary (real thread
//!   parallelism; interpret against `hw_threads`).
//! - **modeled_s** / **modeled_parallel_s** — the Section 3.5 cycle
//!   accounting at the platform's nominal frequency: total work, and
//!   the critical path through the disjoint-pair rounds (what the
//!   parallel schedule would cost on the modelled hardware itself).
//!
//! The determinism contract means every row of a platform describes the
//! *same* latency table — the worker count only moves time around.

use std::time::Instant;

use mctop::alg::probe::{
    collect,
    collect_parallel,
    ProbeStats, //
};
use mctop::backend::SimProber;
use mctop::ProbeConfig;
use serde::Serialize;

const SEED: u64 = 42;
const REPS: usize = 25;
const JOBS: &[usize] = &[2, 4, 8];

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    seed: u64,
    reps: usize,
    /// Hardware threads of the machine that produced the wall times.
    hw_threads: usize,
    platforms: Vec<Platform>,
}

#[derive(Serialize)]
struct Platform {
    preset: String,
    contexts: usize,
    pairs: u64,
    runs: Vec<Run>,
    /// Wall-clock speedup of the highest worker count vs sequential.
    wall_speedup: f64,
    /// Modelled critical-path speedup of the highest worker count vs
    /// sequential (the schedule-level speedup on the platform itself).
    modeled_speedup: f64,
}

#[derive(Serialize)]
struct Run {
    jobs: usize,
    wall_ms: f64,
    modeled_s: f64,
    modeled_parallel_s: f64,
}

fn measure(spec: &mcsim::MachineSpec, cfg: &ProbeConfig, jobs: usize) -> (f64, ProbeStats) {
    let mut prober = SimProber::new(spec, SEED);
    let start = Instant::now();
    let (_, stats) = if jobs <= 1 {
        collect(&mut prober, cfg).expect("collection succeeds")
    } else {
        collect_parallel(&mut prober, cfg, jobs).expect("collection succeeds")
    };
    (start.elapsed().as_secs_f64() * 1e3, stats)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_inference.json".into());
    let cfg = ProbeConfig {
        reps: REPS,
        ..ProbeConfig::fast()
    };
    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut platforms = Vec::new();
    for spec in mcsim::presets::all_paper_platforms() {
        let mut runs = Vec::new();
        let (seq_ms, seq_stats) = measure(&spec, &cfg, 1);
        runs.push(Run {
            jobs: 1,
            wall_ms: seq_ms,
            modeled_s: seq_stats.modeled_seconds(spec.freq_ghz),
            modeled_parallel_s: seq_stats.modeled_parallel_seconds(spec.freq_ghz),
        });
        for &jobs in JOBS {
            let (wall_ms, stats) = measure(&spec, &cfg, jobs);
            runs.push(Run {
                jobs,
                wall_ms,
                modeled_s: stats.modeled_seconds(spec.freq_ghz),
                modeled_parallel_s: stats.modeled_parallel_seconds(spec.freq_ghz),
            });
        }
        let last = runs.last().expect("at least the sequential run");
        let platform = Platform {
            preset: spec.name.clone(),
            contexts: spec.total_hwcs(),
            pairs: seq_stats.pairs,
            wall_speedup: seq_ms / last.wall_ms,
            modeled_speedup: runs[0].modeled_parallel_s / last.modeled_parallel_s,
            runs,
        };
        eprintln!(
            "{:<9} {:>4} ctxs  {:>7} pairs  seq {:>8.1} ms  j{} {:>8.1} ms  \
             wall x{:.2}  modeled x{:.2}",
            platform.preset,
            platform.contexts,
            platform.pairs,
            seq_ms,
            JOBS.last().unwrap(),
            platform.runs.last().unwrap().wall_ms,
            platform.wall_speedup,
            platform.modeled_speedup,
        );
        // The speedup gate, on the deterministic quantity: the modelled
        // critical path must shrink at least 4x at the top worker count
        // on every big platform. (wall_speedup depends on the machine
        // running the bench — a few-core CI runner can't parallelize
        // CPU-bound simulation — so it is recorded but not gated.)
        if platform.contexts >= 64 {
            assert!(
                platform.modeled_speedup >= 4.0,
                "{}: modelled speedup {:.2} < 4x at jobs={}",
                platform.preset,
                platform.modeled_speedup,
                JOBS.last().unwrap()
            );
        }
        platforms.push(platform);
    }

    let report = Report {
        bench: "inference",
        seed: SEED,
        reps: REPS,
        hw_threads,
        platforms,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&out_path, &json).expect("write bench report");
    eprintln!("wrote {out_path}");
}
