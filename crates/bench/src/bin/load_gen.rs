//! Serving load generator: how fast does `mctopd` answer, and how does
//! latency behave as the client count climbs? Emitted as
//! `BENCH_serving.json` for CI.
//!
//! Usage: `load_gen [OUT_PATH] [--duration-ms N] [--clients a,b,c]`
//! (defaults: `BENCH_serving.json`, 500 ms per cell, client ladder
//! `1,4,16,64`).
//!
//! One in-process server per paper platform, pinned to that platform's
//! topology. For each rung of the client ladder, that many client
//! threads run a deterministic mixed request stream (queries,
//! placements, alloc plans) over their own connections for the
//! sustained window; per-request wall latency is measured client-side
//! and pooled across clients for p50/p99. The server's own counters
//! are included per platform so the artifact records how many requests
//! and batches the serving path actually saw.

use std::sync::atomic::{
    AtomicBool,
    Ordering, //
};
use std::sync::Arc;
use std::time::Instant;

use mctop_client::Client;
use mctop_runtime::ServerSnapshot;
use mctopd::{
    Server,
    ServerCfg, //
};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    duration_ms: u64,
    hw_threads: usize,
    client_ladder: Vec<usize>,
    platforms: Vec<Platform>,
}

#[derive(Serialize)]
struct Platform {
    preset: String,
    contexts: usize,
    /// One row per client-count rung.
    rungs: Vec<Rung>,
    /// The server's serving-path counters over all of this platform's
    /// rungs (schema in docs/OBSERVABILITY.md).
    server: ServerSnapshot,
}

#[derive(Serialize)]
struct Rung {
    clients: usize,
    requests: u64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
}

/// The request mix one client cycles through. Everything is answered
/// from the memoized `Arc<TopoView>`, so the mix exercises cheap index
/// lookups (latency), mid-weight renders (summary, walk) and heavier
/// resolution work (placement, alloc-plan).
fn run_client(sock: &std::path::Path, desc: &str, stop: &AtomicBool, seed: u64) -> (u64, Vec<f64>) {
    let mut client = Client::connect(sock).expect("connect");
    let mut latencies_us = Vec::with_capacity(4096);
    let mut served = 0u64;
    let mut state = seed | 1;
    let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    while !stop.load(Ordering::Relaxed) {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let start = Instant::now();
        match (state >> 11) % 8 {
            0 | 1 => {
                client.query(desc, "latency", &args(&["0", "1"])).unwrap();
            }
            2 | 3 => {
                client.query(desc, "summary", &[]).unwrap();
            }
            4 => {
                client.query(desc, "walk", &[]).unwrap();
            }
            5 => {
                client.query(desc, "socket-of", &args(&["0"])).unwrap();
            }
            6 => {
                client.placement(desc, "RR_CORE", 8).unwrap();
            }
            _ => {
                client.alloc_plan(desc, "local", 8).unwrap();
            }
        }
        latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
        served += 1;
    }
    (served, latencies_us)
}

fn main() {
    let mut out_path = "BENCH_serving.json".to_string();
    let mut duration_ms = 500u64;
    let mut ladder: Vec<usize> = vec![1, 4, 16, 64];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--duration-ms" => {
                duration_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--duration-ms takes a number");
            }
            "--clients" => {
                ladder = args
                    .next()
                    .map(|v| {
                        v.split(',')
                            .map(|c| c.parse().expect("--clients takes numbers"))
                            .collect()
                    })
                    .expect("--clients takes a,b,c");
            }
            other => out_path = other.to_string(),
        }
    }

    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut platforms = Vec::new();
    for spec in mcsim::presets::all_paper_platforms() {
        let sock = std::env::temp_dir().join(format!(
            "mctopd-loadgen-{}-{}.sock",
            std::process::id(),
            spec.name
        ));
        let _ = std::fs::remove_file(&sock);
        let server = Server::bind(ServerCfg {
            socket: sock.clone(),
            source: mctopd::DescSource::Shipped,
            pin_desc: Some(spec.name.clone()),
            workers: None,
            os_pin: false,
        })
        .expect("server binds");
        let handle = server.start();

        let mut rungs = Vec::new();
        for &clients in &ladder {
            let stop = Arc::new(AtomicBool::new(false));
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let sock = sock.clone();
                    let desc = spec.name.clone();
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || run_client(&sock, &desc, &stop, 0xC0FFEE + c as u64))
                })
                .collect();
            let window = Instant::now();
            std::thread::sleep(std::time::Duration::from_millis(duration_ms));
            stop.store(true, Ordering::Relaxed);
            let mut requests = 0u64;
            let mut latencies_us: Vec<f64> = Vec::new();
            for w in workers {
                let (served, lats) = w.join().expect("client thread");
                requests += served;
                latencies_us.extend(lats);
            }
            let elapsed = window.elapsed().as_secs_f64();
            latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            let pct = |p: f64| -> f64 {
                if latencies_us.is_empty() {
                    return 0.0;
                }
                let i = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
                latencies_us[i]
            };
            let rung = Rung {
                clients,
                requests,
                rps: requests as f64 / elapsed,
                p50_us: pct(0.50),
                p99_us: pct(0.99),
            };
            eprintln!(
                "{:<9} {:>3} clients  {:>8.0} req/s  p50 {:>7.1} us  p99 {:>8.1} us",
                spec.name, clients, rung.rps, rung.p50_us, rung.p99_us
            );
            rungs.push(rung);
        }

        let snapshot = handle.metrics().server_snapshot();
        handle.stop();
        platforms.push(Platform {
            preset: spec.name.clone(),
            contexts: mctop::Registry::shipped()
                .view(&spec.name)
                .expect("shipped description")
                .num_hwcs(),
            rungs,
            server: snapshot,
        });
    }

    let report = Report {
        bench: "serving",
        duration_ms,
        hw_threads,
        client_ladder: ladder,
        platforms,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");
}
