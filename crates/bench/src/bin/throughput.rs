//! Sustained mixed-workload throughput harness: the bench that earns
//! (or refutes) the "millions of requests" trajectory, emitted as
//! `BENCH_throughput.json` for CI.
//!
//! Usage: `throughput [OUT_PATH] [--duration-ms N] [--batch N]`
//! (defaults: `BENCH_throughput.json`, 1000 ms per platform × kernel
//! mode, admission batches of 32).
//!
//! One persistent [`Executor`] per paper platform serves a seeded
//! mixed request stream — sorts (the hot path under test), MapReduce
//! jobs, placement queries and alloc-plan resolutions — with
//! **admission batching**: requests are admitted in fixed-size batches
//! from the queue and run back to back, the shape of a server draining
//! its accept queue. Per-request wall latency feeds p50/p99; the
//! request rate is measured over the whole sustained window, not a
//! one-shot run. Sorts reuse one [`SortScratch`] across the entire
//! stream, so the steady state allocates nothing per request.
//!
//! Every platform runs the stream twice — once with the forced-scalar
//! merge kernel, once with the auto-detected SIMD kernel — plus a
//! single-threaded merge-phase microbench of both kernels, so the
//! artifact tracks the SIMD speedup at both the kernel level and the
//! end-to-end request level.

use std::time::Instant;

use mctop_alloc::{
    AllocCfg,
    AllocPlan,
    AllocPolicy, //
};
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};
use mctop_runtime::{
    metrics,
    ExecCfg,
    Executor,
    MetricsSnapshot, //
};
use mctop_sort::simd::{
    self,
    KernelTable, //
};
use mctop_sort::SortScratch;
use serde::Serialize;

/// Workers per platform (clamped to the platform's context count).
const WORKERS: usize = 8;
/// Elements per sort request.
const SORT_ELEMS: usize = 1 << 16;
/// Lines per MapReduce request.
const MAPRED_LINES: usize = 2_000;
/// Elements per side of the merge-phase microbench.
const MERGE_BENCH_ELEMS: usize = 1 << 21;

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    duration_ms: u64,
    batch: usize,
    hw_threads: usize,
    /// The kernel `simd::auto()` dispatched on this host.
    auto_kernel: &'static str,
    platforms: Vec<Platform>,
}

#[derive(Serialize)]
struct Platform {
    preset: String,
    contexts: usize,
    workers: usize,
    /// One row per kernel mode (scalar, then auto).
    modes: Vec<Mode>,
    /// Merge-phase throughput, SIMD over scalar (the acceptance
    /// metric: must be >= 1.3 where a vector unit exists).
    merge_phase_speedup: f64,
    /// End-to-end request throughput, SIMD over scalar.
    simd_vs_scalar_rps: f64,
    /// Runtime counter delta over this platform's sustained windows,
    /// both kernel modes included (schema in docs/OBSERVABILITY.md;
    /// park/unpark counts are timing-dependent).
    metrics: MetricsSnapshot,
}

#[derive(Serialize)]
struct Mode {
    kernel: &'static str,
    requests: u64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    /// Requests served per kind over the window.
    mix: Mix,
    /// Single-threaded merge-phase throughput of this mode's kernel,
    /// million elements per second.
    merge_phase_melems_s: f64,
}

#[derive(Serialize, Default, Clone, Copy)]
struct Mix {
    sort: u64,
    mapred: u64,
    place: u64,
    alloc: u64,
}

/// One admitted request. Payload indices select pre-generated inputs
/// so request generation costs nothing inside the measured window.
#[derive(Clone, Copy)]
enum Request {
    /// Sort dataset `idx` to destination socket `dest`.
    Sort { idx: usize, dest: usize },
    /// WordCount over text corpus `idx`.
    MapRed { idx: usize },
    /// Resolve a placement with `policy` for `threads` threads.
    Place { policy: Policy, threads: usize },
    /// Resolve an alloc plan with `policy`.
    Alloc { policy: u8 },
}

/// Deterministic request stream: the same seed yields the same mix for
/// both kernel modes, so their rows are comparable.
struct Stream {
    state: u64,
    sockets: usize,
    max_threads: usize,
}

impl Stream {
    fn new(seed: u64, sockets: usize, max_threads: usize) -> Stream {
        Stream {
            state: seed | 1,
            sockets,
            max_threads,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 11
    }

    fn next(&mut self) -> Request {
        // Sort-heavy mix: the merge kernels are the lever under test,
        // but every library surface stays on the critical path.
        match self.next_u64() % 10 {
            0..=4 => Request::Sort {
                idx: (self.next_u64() % SORT_POOL as u64) as usize,
                dest: (self.next_u64() % self.sockets as u64) as usize,
            },
            5 | 6 => Request::MapRed {
                idx: (self.next_u64() % MAPRED_POOL as u64) as usize,
            },
            7 | 8 => {
                let policies = [
                    Policy::RrCore,
                    Policy::ConHwc,
                    Policy::BalanceCore,
                    Policy::ConCoreHwc,
                ];
                Request::Place {
                    policy: policies[(self.next_u64() % 4) as usize],
                    threads: 1 + (self.next_u64() % self.max_threads as u64) as usize,
                }
            }
            _ => Request::Alloc {
                policy: (self.next_u64() % 3) as u8,
            },
        }
    }
}

/// Pre-generated sort datasets rotated through by the stream.
const SORT_POOL: usize = 4;
/// Pre-generated MapReduce corpora.
const MAPRED_POOL: usize = 2;

struct Inputs {
    sorts: Vec<Vec<u32>>,
    texts: Vec<Vec<Vec<u32>>>,
}

fn inputs() -> Inputs {
    let sorts = (0..SORT_POOL)
        .map(|i| {
            let mut x = 0x9E37_79B9u64.wrapping_add(i as u64);
            (0..SORT_ELEMS)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x as u32
                })
                .collect()
        })
        .collect();
    let texts = (0..MAPRED_POOL)
        .map(|i| mctop_mapred::workloads::gen_text(MAPRED_LINES, 12, 500, i as u64))
        .collect();
    Inputs { sorts, texts }
}

/// Runs one sustained window over `exec`; returns the mode row.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    exec: &Executor,
    view: &mctop::view::TopoView,
    inputs: &Inputs,
    table: &'static KernelTable,
    duration_ms: u64,
    batch: usize,
    seed: u64,
) -> Mode {
    let mut stream = Stream::new(seed, view.num_sockets(), WORKERS.min(view.num_hwcs()));
    let mut scratch = SortScratch::new();
    let mut latencies_us: Vec<f64> = Vec::with_capacity(4096);
    let mut mix = Mix::default();
    let alloc_cfg = AllocCfg::default();
    let budget = std::time::Duration::from_millis(duration_ms);

    // Warm the executor and the scratch pool outside the window.
    for ds in inputs.sorts.iter().take(1) {
        let mut v = ds.clone();
        mctop_sort::mctop_sort_kernel_on(exec, &mut v, view, 0, &mut scratch, table);
    }

    let window = Instant::now();
    let mut requests = 0u64;
    while window.elapsed() < budget {
        // Admission batching: pull one fixed-size batch off the stream,
        // then drain it back to back.
        let admitted: Vec<Request> = (0..batch).map(|_| stream.next()).collect();
        for req in admitted {
            let start = Instant::now();
            match req {
                Request::Sort { idx, dest } => {
                    let mut v = inputs.sorts[idx].clone();
                    mctop_sort::mctop_sort_kernel_on(exec, &mut v, view, dest, &mut scratch, table);
                    std::hint::black_box(v.last().copied());
                    mix.sort += 1;
                }
                Request::MapRed { idx } => {
                    let out = mctop_mapred::run_job_on(
                        exec,
                        &mctop_mapred::workloads::WordCount,
                        &inputs.texts[idx],
                        &Default::default(),
                    );
                    std::hint::black_box(out.len());
                    mix.mapred += 1;
                }
                Request::Place { policy, threads } => {
                    let p = Placement::with_view(view, policy, PlaceOpts::threads(threads))
                        .expect("paper platforms place");
                    std::hint::black_box(p.capacity());
                    mix.place += 1;
                }
                Request::Alloc { policy } => {
                    let policy = match policy {
                        0 => AllocPolicy::Local,
                        1 => AllocPolicy::Interleave,
                        _ => AllocPolicy::BwProportional,
                    };
                    let placement = Placement::with_view(
                        view,
                        Policy::RrCore,
                        PlaceOpts::threads(WORKERS.min(view.num_hwcs())),
                    )
                    .expect("RR placement");
                    let plan = AllocPlan::resolve(view, &placement, &policy, &alloc_cfg)
                        .expect("paper platforms resolve");
                    std::hint::black_box(plan.arenas.len());
                    mix.alloc += 1;
                }
            }
            latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
            requests += 1;
        }
    }
    let elapsed = window.elapsed().as_secs_f64();

    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        let i = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
        latencies_us[i]
    };
    let merge_ns = simd::measure_merge_ns(table, MERGE_BENCH_ELEMS, 3);
    Mode {
        kernel: table.name,
        requests,
        rps: requests as f64 / elapsed,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        mix,
        merge_phase_melems_s: 1e3 / merge_ns,
    }
}

fn main() {
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut duration_ms = 1000u64;
    let mut batch = 32usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--duration-ms" => {
                duration_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--duration-ms takes a number");
            }
            "--batch" => {
                batch = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--batch takes a number");
            }
            other => out_path = other.to_string(),
        }
    }

    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let registry = mctop::Registry::shipped();
    let ins = inputs();

    let mut platforms = Vec::new();
    for spec in mcsim::presets::all_paper_platforms() {
        let view = registry.view(&spec.name).expect("shipped description");
        let workers = WORKERS.min(view.num_hwcs());
        let placement = Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(workers))
            .expect("RR placement");
        let cfg = ExecCfg {
            workers: None,
            os_pin: false,
        };
        let counters_before = metrics::global().snapshot();
        let exec = Executor::with_cfg(Some(&view), &placement, cfg);

        let modes: Vec<Mode> = [simd::scalar(), simd::auto()]
            .into_iter()
            .map(|table| run_mode(&exec, &view, &ins, table, duration_ms, batch, 0xC0FFEE))
            .collect();
        drop(exec);
        let counters = metrics::global().snapshot().delta(&counters_before);
        let merge_phase_speedup = modes[1].merge_phase_melems_s / modes[0].merge_phase_melems_s;
        let simd_vs_scalar_rps = modes[1].rps / modes[0].rps;
        eprintln!(
            "{:<9} {:>4} ctxs  {} workers  scalar {:>8.0} req/s  {} {:>8.0} req/s  \
             (x{:.2} rps, x{:.2} merge-phase)  p99 {:>7.0} us",
            spec.name,
            view.num_hwcs(),
            workers,
            modes[0].rps,
            modes[1].kernel,
            modes[1].rps,
            simd_vs_scalar_rps,
            merge_phase_speedup,
            modes[1].p99_us,
        );
        platforms.push(Platform {
            preset: spec.name.clone(),
            contexts: view.num_hwcs(),
            workers,
            modes,
            merge_phase_speedup,
            simd_vs_scalar_rps,
            metrics: counters,
        });
    }

    let report = Report {
        bench: "throughput",
        duration_ms,
        batch,
        hw_threads,
        auto_kernel: simd::auto().name,
        platforms,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");
}
