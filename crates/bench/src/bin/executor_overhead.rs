//! Executor dispatch overhead benchmark: per-call scoped-thread spawn
//! versus persistent-executor dispatch, across the five paper
//! platforms, emitted as `BENCH_executor.json` for the CI bench
//! trajectory.
//!
//! Usage: `executor_overhead [OUT_PATH]` (default
//! `BENCH_executor.json`).
//!
//! Each "call" runs one small task per worker — the shape of a
//! repeated parallel workload invocation (a sort phase, a MapReduce
//! job, an OpenMP region, an alloc first-touch pass). The scoped
//! baseline spawns and joins fresh `std::thread::scope` threads every
//! call (what every workload crate did before the executor refactor);
//! the persistent rows dispatch the same tasks to the long-lived,
//! already-placed executor workers. Arm cost is reported separately so
//! the amortization point is visible.

use std::time::Instant;

use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};
use mctop_runtime::{
    metrics,
    ExecCfg,
    Executor,
    MetricsSnapshot, //
};
use serde::Serialize;

/// Dispatches per measured run.
const REPS: usize = 300;
/// Warm-up dispatches before each measurement.
const WARMUP: usize = 20;
/// Per-task work units (a dependent arithmetic chain, ~1 cycle each):
/// small enough that dispatch overhead dominates, non-zero so the
/// comparison is not a pure no-op race.
const TASK_WORK: u64 = 2_000;
/// Workers per platform (clamped to the platform's context count).
const WORKERS: usize = 8;

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    reps: usize,
    task_work: u64,
    workers: usize,
    /// Hardware threads of the machine that produced the wall times.
    hw_threads: usize,
    platforms: Vec<Platform>,
}

#[derive(Serialize)]
struct Platform {
    preset: String,
    contexts: usize,
    workers: usize,
    /// One-time executor arm cost (spawn + pin of all workers), µs.
    arm_us: f64,
    /// Per-call cost of spawning fresh scoped threads, µs.
    scoped_us_per_call: f64,
    /// Per-call cost of dispatching to the persistent executor, µs.
    persistent_us_per_call: f64,
    /// scoped / persistent: how much a repeated invocation gains.
    speedup: f64,
    /// Calls after which the arm cost has amortized (ceil), or 0 if
    /// persistent dispatch is not faster per call.
    breakeven_calls: u64,
    /// Runtime counter delta over this platform's measured section
    /// (schema in docs/OBSERVABILITY.md; park/unpark counts are
    /// timing-dependent).
    metrics: MetricsSnapshot,
}

#[inline]
fn work(units: u64, salt: u64) -> u64 {
    let mut x = units | salt | 1;
    for i in 0..units {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(x)
}

/// The pre-refactor shape: one fresh scoped thread per worker per call.
fn scoped_call(workers: usize) {
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || work(TASK_WORK, w as u64));
        }
    });
}

/// The persistent shape: one targeted task per worker per call.
fn persistent_call(exec: &Executor) {
    let _ = exec.run(|ctx| work(TASK_WORK, ctx.id as u64));
}

fn measure(label: &str, reps: usize, mut call: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        call();
    }
    let start = Instant::now();
    for _ in 0..reps {
        call();
    }
    let us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
    let _ = label;
    us
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_executor.json".into());
    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let registry = mctop::Registry::shipped();

    let mut platforms = Vec::new();
    for spec in mcsim::presets::all_paper_platforms() {
        let view = registry.view(&spec.name).expect("shipped description");
        let workers = WORKERS.min(view.num_hwcs());
        let placement = Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(workers))
            .expect("RR placement");
        // OS pinning off for both sides: the comparison is dispatch
        // overhead, not host-affinity effects.
        let cfg = ExecCfg {
            workers: None,
            os_pin: false,
        };
        let counters_before = metrics::global().snapshot();
        let arm_start = Instant::now();
        let exec = Executor::with_cfg(Some(&view), &placement, cfg);
        let arm_us = arm_start.elapsed().as_secs_f64() * 1e6;

        let scoped_us = measure("scoped", REPS, || scoped_call(workers));
        let persistent_us = measure("persistent", REPS, || persistent_call(&exec));
        let speedup = scoped_us / persistent_us;
        let breakeven_calls = if persistent_us < scoped_us {
            (arm_us / (scoped_us - persistent_us)).ceil() as u64
        } else {
            0
        };
        eprintln!(
            "{:<9} {:>4} ctxs  {} workers  scoped {:>9.1} us/call  persistent {:>8.1} us/call  \
             x{:.2}  arm {:>8.1} us (breakeven {} calls)",
            spec.name,
            view.num_hwcs(),
            workers,
            scoped_us,
            persistent_us,
            speedup,
            arm_us,
            breakeven_calls
        );
        drop(exec);
        platforms.push(Platform {
            preset: spec.name.clone(),
            contexts: view.num_hwcs(),
            workers,
            arm_us,
            scoped_us_per_call: scoped_us,
            persistent_us_per_call: persistent_us,
            speedup,
            breakeven_calls,
            metrics: metrics::global().snapshot().delta(&counters_before),
        });
    }

    let report = Report {
        bench: "executor_overhead",
        reps: REPS,
        task_work: TASK_WORK,
        workers: WORKERS,
        hw_threads,
        platforms,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");
}
