//! Regenerates every table and figure of the MCTOP paper's evaluation.
//!
//! Usage: `figures [fig1|fig2|fig3|fig6|fig7|fig8|fig9|fig10|fig11|
//! fig12|alg-cost|all]` (default `all`). DOT files are written next to
//! the textual output under `target/figures/`.

use std::path::PathBuf;

use mcsim::MachineSpec;
use mctop_bench::enriched_topology;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let all = which == "all";
    if all || which == "fig1" {
        topology_figure(&mcsim::presets::opteron(), "fig1");
    }
    if all || which == "fig2" {
        topology_figure(&mcsim::presets::westmere(), "fig2");
    }
    if all || which == "fig3" {
        topology_figure(&mcsim::presets::sparc(), "fig3");
    }
    if all || which == "fig6" {
        fig6();
    }
    if all || which == "fig7" {
        fig7();
    }
    if all || which == "fig8" {
        fig8();
    }
    if all || which == "fig9" {
        fig9();
    }
    if all || which == "fig10" {
        fig10();
    }
    if all || which == "fig11" {
        fig11();
    }
    if all || which == "fig12" {
        fig12();
    }
    if all || which == "alg-cost" {
        alg_cost();
    }
}

fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create output dir");
    dir
}

/// Figs. 1-3: inferred topology + enrichment, rendered as text and DOT.
fn topology_figure(spec: &MachineSpec, tag: &str) {
    println!("==== {tag}: MCTOP of {} ====", spec.name);
    let topo = enriched_topology(spec);
    print!("{}", mctop::fmt::text::render(&topo));
    let dot = mctop::fmt::dot::full(&topo);
    let path = out_dir().join(format!("{tag}-{}.dot", spec.name));
    std::fs::write(&path, &dot).expect("write dot file");
    println!("# DOT graph written to {}\n", path.display());
}

/// Fig. 6: the four steps of MCTOP-ALG on Ivy.
fn fig6() {
    println!("==== fig6: the four steps of MCTOP-ALG on Ivy ====");
    let spec = mcsim::presets::ivy();
    let mut prober = mctop::backend::SimProber::new(&spec, 42);
    let cfg = mctop::ProbeConfig::fast();
    let inference = mctop::alg::run_full(&mut prober, &cfg).expect("inference");

    println!("-- step 1: latency table (corner, cycles) --");
    let n = inference.raw_table.n();
    for a in 0..8.min(n) {
        let row: Vec<String> = (0..8.min(n))
            .map(|b| format!("{:>4}", inference.raw_table.get(a, b)))
            .collect();
        println!("  {}", row.join(" "));
    }
    println!("-- step 2a: latency clusters from the CDF --");
    for (i, c) in inference.clusters.iter().enumerate() {
        println!(
            "  cluster {i}: min {:>4}  median {:>4}  max {:>4}",
            c.min, c.median, c.max
        );
    }
    println!("-- step 2b: normalized table (corner) --");
    let topo = &inference.topology;
    for a in 0..8.min(n) {
        let row: Vec<String> = (0..8.min(n))
            .map(|b| format!("{:>4}", topo.get_latency(a, b)))
            .collect();
        println!("  {}", row.join(" "));
    }
    println!("-- steps 3-4: components and roles --");
    print!("{}", mctop::fmt::text::render(topo));
    println!();
}

/// Fig. 7: MCTOP-PLACE output for CON_HWC with 30 threads on Ivy.
fn fig7() {
    println!("==== fig7: MCTOP-PLACE CON_HWC, 30 threads, Ivy ====");
    let spec = mcsim::presets::ivy();
    let view = mctop_bench::enriched_view(&spec);
    let place = mctop_place::Placement::with_view(
        &view,
        mctop_place::Policy::ConHwc,
        mctop_place::PlaceOpts::threads(30),
    )
    .expect("placement");
    print!("{}", place.print());
    println!();
}

/// Fig. 8: lock throughput with educated backoffs (coherence model).
fn fig8() {
    println!("==== fig8: relative lock throughput with educated backoffs ====");
    use mctop_locks::sim::{
        default_thread_counts,
        fig8_series,
        SimParams, //
    };
    let params = SimParams::default();
    for spec in mcsim::presets::all_paper_platforms() {
        println!("-- {} --", spec.name);
        let counts = default_thread_counts(&spec);
        for algo in mctop_locks::LockAlgo::ALL {
            let series = fig8_series(&spec, algo, &counts, &params);
            let pts: Vec<String> = series
                .iter()
                .map(|p| format!("{}:{:.2}", p.threads, p.relative))
                .collect();
            let avg: f64 = series.iter().map(|p| p.relative).sum::<f64>() / series.len() as f64;
            println!("  {:<7} avg {:.2}  [{}]", algo.name(), avg, pts.join(" "));
        }
    }
    println!();
}

/// Fig. 9: sorting time breakdown for 1 GB of integers.
fn fig9() {
    println!("==== fig9: sort time breakdown, 1 GB of integers (model) ====");
    use mctop_sort::model::{
        fig9_column,
        SortModelCfg, //
    };
    let cfg = SortModelCfg::default();
    for threads_label in ["16 threads", "full machine"] {
        println!("-- {threads_label} --");
        for spec in mcsim::presets::all_paper_platforms() {
            let topo = enriched_topology(&spec);
            let threads = if threads_label == "16 threads" {
                16
            } else {
                spec.total_hwcs()
            };
            let col = fig9_column(&spec, &topo, threads, &cfg);
            let cells: Vec<String> = col
                .iter()
                .map(|(algo, t)| {
                    format!(
                        "{}: {:.2}s (seq {:.2} + merge {:.2})",
                        algo.name(),
                        t.total(),
                        t.seq_s,
                        t.merge_s
                    )
                })
                .collect();
            println!("  {:<9} {}", spec.name, cells.join("  "));
        }
    }
    println!();
}

/// Fig. 10: Metis with MCTOP-PLACE vs default Metis.
fn fig10() {
    println!("==== fig10: Metis relative time (and energy) with libmctop ====");
    for spec in mcsim::presets::all_paper_platforms() {
        let topo = enriched_topology(&spec);
        let bars = mctop_mapred::model::fig10_platform(&spec, &topo);
        let cells: Vec<String> = bars
            .iter()
            .map(|b| {
                let e = b
                    .rel_energy
                    .map(|e| format!(" e{:.2}", e))
                    .unwrap_or_default();
                format!("{} ({}): {:.2}{e}", b.workload, b.policy.name(), b.rel_time)
            })
            .collect();
        println!("  {:<9} {}", spec.name, cells.join("  "));
    }
    println!();
}

/// Fig. 11: energy-oriented vs performance-oriented placement on Ivy.
fn fig11() {
    println!("==== fig11: POWER placement vs performance placement (Ivy) ====");
    let spec = mcsim::presets::ivy();
    let topo = enriched_topology(&spec);
    println!(
        "  {:<10} {:>6} {:>7} {:>11}",
        "Workload", "Time", "Energy", "Efficiency"
    );
    for row in mctop_mapred::model::fig11(&spec, &topo) {
        println!(
            "  {:<10} {:>6.3} {:>7.3} {:>11.3}",
            row.workload, row.time, row.energy, row.efficiency
        );
    }
    println!();
}

/// Fig. 12: MCTOP MP vs default OpenMP on graph workloads.
fn fig12() {
    println!("==== fig12: MCTOP MP relative time vs OpenMP (x86 platforms) ====");
    for spec in mctop_omp::model::fig12_platforms() {
        let topo = enriched_topology(&spec);
        let bars = mctop_omp::model::fig12_platform(&spec, &topo);
        let cells: Vec<String> = bars
            .iter()
            .map(|b| format!("{} ({}): {:.2}", b.workload, b.policy.name(), b.rel_time))
            .collect();
        println!("  {:<9} {}", spec.name, cells.join("  "));
    }
    println!();
}

/// Section 3.5: inference cost (~3 s on Ivy, 96 s on Westmere).
fn alg_cost() {
    println!("==== alg-cost: modelled MCTOP-ALG inference time (2000 reps) ====");
    for spec in mcsim::presets::all_paper_platforms() {
        let mut prober = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 25,
            ..mctop::ProbeConfig::default()
        };
        let (_, stats) = mctop::alg::probe::collect(&mut prober, &cfg).expect("collection");
        let full = stats.scaled_to_reps(25, 2000);
        println!(
            "  {:<9} {:>4} contexts  {:>9} pairs  {:>6.1} s @ {} GHz",
            spec.name,
            spec.total_hwcs(),
            full.pairs,
            full.modeled_seconds(spec.freq_ghz),
            spec.freq_ghz
        );
    }
    println!();
}
