//! Mesh-scale inference benchmark: the NoC ladder (2D meshes and
//! multiplicative circulants, 64 to 256 sockets), emitted as
//! `BENCH_scale.json` for the CI bench trajectory.
//!
//! Usage: `scale_inference [OUT_PATH]` (default `BENCH_scale.json`).
//!
//! Per machine:
//!
//! - **pairs_probed / pairs_exhaustive** — the pruned collection plan
//!   (neighborhood ball + stride chords + hashed samples) against the
//!   full upper triangle; reconstruction is exact, so both plans yield
//!   the same topology.
//! - **infer wall times** — pruned vs exhaustive canonical inference
//!   over the noiseless oracle.
//! - **dense / sparse view rows** — build time, resident bytes fresh
//!   and after the query workload (dense matrices build lazily, so the
//!   touched number is the honest one), and per-query latency
//!   percentiles over a deterministic mixed workload.
//!
//! The scaling gates at the bottom are the point of this bench: probed
//! pairs and sparse resident bytes must grow subquadratically along the
//! mesh ladder, and the big mesh must stay under a quarter of the
//! exhaustive pair count.

use std::sync::Arc;
use std::time::Instant;

use mctop::alg::probe::PairSelection;
use mctop::backend::SimProber;
use mctop::desc;
use mctop::view::{
    TopoView,
    ViewBackend, //
};
use serde::Serialize;

const QUERIES: usize = 20_000;

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    queries_per_view: usize,
    machines: Vec<MachineRow>,
}

#[derive(Serialize)]
struct MachineRow {
    preset: String,
    sockets: usize,
    contexts: usize,
    pairs_exhaustive: u64,
    pairs_probed: u64,
    probed_frac: f64,
    infer_pruned_ms: f64,
    infer_exhaustive_ms: f64,
    dense: ViewRow,
    sparse: ViewRow,
}

#[derive(Serialize)]
struct ViewRow {
    build_ms: f64,
    resident_bytes_fresh: usize,
    resident_bytes_touched: usize,
    query_p50_ns: u64,
    query_p99_ns: u64,
}

/// Runs canonical inference (noiseless oracle, 8 collection workers)
/// and returns the topology, measured pair count, and wall time.
fn infer(spec: &mcsim::MachineSpec, pairs: PairSelection) -> (mctop::Mctop, u64, f64) {
    let cfg = mctop::ProbeConfig {
        pairs,
        ..desc::canonical_probe_config_for(spec)
    };
    let mut prober = SimProber::noiseless(spec);
    let start = Instant::now();
    let inf = mctop::alg::run_full_jobs(&mut prober, &cfg, 8).expect("inference succeeds");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (inf.topology, inf.stats.pairs, wall_ms)
}

/// Builds a view on the given backend and drives the deterministic
/// query workload through it, timing each query.
fn bench_view(topo: &mctop::Mctop, backend: ViewBackend) -> ViewRow {
    let start = Instant::now();
    let view = TopoView::with_backend(Arc::new(topo.clone()), backend);
    let build_ms = start.elapsed().as_secs_f64() * 1e3;
    let fresh = view.resident_bytes();

    let s = view.num_sockets();
    let mut samples = Vec::with_capacity(QUERIES);
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (s as u64);
    let mut next = move || {
        // splitmix64: deterministic pair stream, identical per backend.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut sink = 0u64;
    for q in 0..QUERIES {
        let r = next();
        let (a, b) = ((r as usize) % s, ((r >> 32) as usize) % s);
        let t = Instant::now();
        sink = sink.wrapping_add(match q % 4 {
            0 => view.socket_latency(a, b) as u64,
            1 => view.socket_hops(a, b) as u64,
            2 => view.cross_bandwidth(a, b).unwrap_or(0.0) as u64,
            _ => view.closest_sockets(a).first().copied().unwrap_or(0) as u64,
        });
        samples.push(t.elapsed().as_nanos() as u64);
    }
    std::hint::black_box(sink);
    samples.sort_unstable();
    ViewRow {
        build_ms,
        resident_bytes_fresh: fresh,
        resident_bytes_touched: view.resident_bytes(),
        query_p50_ns: samples[QUERIES / 2],
        query_p99_ns: samples[QUERIES * 99 / 100],
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scale.json".into());

    let mut machines = Vec::new();
    for spec in mcsim::presets::all_mesh_scale() {
        let n = spec.total_hwcs();
        let pairs_exhaustive = (n * (n - 1) / 2) as u64;
        let (topo, pairs_probed, infer_pruned_ms) =
            infer(&spec, desc::canonical_probe_config_for(&spec).pairs);
        let (exh_topo, exh_pairs, infer_exhaustive_ms) = infer(&spec, PairSelection::Exhaustive);
        assert_eq!(exh_pairs, pairs_exhaustive, "{}: full plan", spec.name);
        // Reconstruction exactness, end to end: the pruned run infers
        // the very same topology the exhaustive run does.
        assert_eq!(topo, exh_topo, "{}: pruned inference diverges", spec.name);

        let row = MachineRow {
            preset: spec.name.clone(),
            sockets: spec.sockets,
            contexts: n,
            pairs_exhaustive,
            pairs_probed,
            probed_frac: pairs_probed as f64 / pairs_exhaustive as f64,
            infer_pruned_ms,
            infer_exhaustive_ms,
            dense: bench_view(&topo, ViewBackend::Dense),
            sparse: bench_view(&topo, ViewBackend::Sparse),
        };
        eprintln!(
            "{:<20} {:>3} sockets  pairs {:>6}/{:>6} ({:>5.1}%)  infer {:>7.1} ms \
             (exhaustive {:>7.1} ms)  sparse {:>8} B / dense {:>8} B touched",
            row.preset,
            row.sockets,
            row.pairs_probed,
            row.pairs_exhaustive,
            100.0 * row.probed_frac,
            row.infer_pruned_ms,
            row.infer_exhaustive_ms,
            row.sparse.resident_bytes_touched,
            row.dense.resident_bytes_touched,
        );
        machines.push(row);
    }

    // The scaling gates. The mesh ladder runs 64 -> 144 -> 256 sockets;
    // quadratic growth from mesh-64 to mesh-256 would be 16x in socket
    // pairs (and ~16x in context pairs).
    let by_name = |name: &str| {
        machines
            .iter()
            .find(|m| m.preset == name)
            .unwrap_or_else(|| panic!("missing {name}"))
    };
    let (small, big) = (by_name("synth-mesh-64"), by_name("synth-mesh-256"));
    assert!(
        big.probed_frac <= 0.25,
        "mesh-256 probed fraction {:.3} above the 25% budget",
        big.probed_frac
    );
    let pair_growth = big.pairs_probed as f64 / small.pairs_probed as f64;
    assert!(
        pair_growth < 8.0,
        "probed pairs grew {pair_growth:.2}x from mesh-64 to mesh-256 (quadratic would be 16x)"
    );
    // Fresh bytes are the subquadratic claim: what the sparse store
    // costs to hold a topology resident. Touched bytes are recorded
    // but not gated — the workload asks `closest_sockets` of every
    // socket, and caching every socket's full neighbor order is
    // Ω(sockets²) by the size of the answers themselves.
    let byte_growth =
        big.sparse.resident_bytes_fresh as f64 / small.sparse.resident_bytes_fresh as f64;
    assert!(
        byte_growth < 8.0,
        "sparse resident bytes grew {byte_growth:.2}x from mesh-64 to mesh-256 \
         (quadratic would be 16x)"
    );

    let report = Report {
        bench: "scale",
        queries_per_view: QUERIES,
        machines,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&out_path, &json).expect("write bench report");
    eprintln!("wrote {out_path}");
}
