//! Allocation-policy comparison: modeled memory costs of every
//! [`AllocPolicy`] on the paper platforms, emitted as
//! `BENCH_alloc.json` for the CI bench trajectory.
//!
//! Usage: `alloc_compare [OUT_PATH]` (default `BENCH_alloc.json`).
//!
//! For each platform, one core-per-core RR_CORE placement is resolved
//! under LOCAL, INTERLEAVE and BW_PROPORTIONAL, and the plan is charged
//! through the *modeled* backend ([`mctop_alloc::ModelBackend`], over
//! `mcsim::MemoryOracle`), so the numbers are deterministic and
//! comparable run to run:
//!
//! - **mean_latency_cycles** — stripe-weighted pointer-chase latency of
//!   one worker's arena, averaged over workers;
//! - **aggregate_bw_gbs** — what all workers stream together against
//!   their stripe mixes (per-socket caps applied);
//! - **sort_merge_s / mapred_wordcount_s** — the application cost
//!   models of Figs. 9/10 with their buffers routed through the policy.

use mcsim::MachineSpec;
use mctop_alloc::{
    AllocCfg,
    AllocPlan,
    AllocPolicy,
    MemoryBackend,
    ModelBackend, //
};
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};
use mctop_sort::model::{
    predict_alloc,
    SortAlgo,
    SortModelCfg, //
};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    bytes_per_worker: usize,
    platforms: Vec<Platform>,
}

#[derive(Serialize)]
struct Platform {
    preset: String,
    workers: usize,
    /// Streaming threads that saturate each socket's local controller.
    saturation_threads: Vec<usize>,
    policies: Vec<PolicyRow>,
}

#[derive(Serialize)]
struct PolicyRow {
    policy: String,
    mean_latency_cycles: f64,
    aggregate_bw_gbs: f64,
    sort_merge_s: f64,
    mapred_wordcount_s: f64,
}

fn row(
    spec: &MachineSpec,
    view: &mctop::TopoView,
    place: &Placement,
    policy: &AllocPolicy,
) -> PolicyRow {
    let plan = AllocPlan::resolve(view, place, policy, &AllocCfg::default())
        .expect("enriched descriptions resolve every policy");
    let mut backend = ModelBackend::new(spec);
    let arenas = backend.provision(&plan).expect("modeled provisioning");
    let mean_latency =
        arenas.iter().map(|a| a.latency_cycles).sum::<f64>() / arenas.len().max(1) as f64;
    let aggregate_bw: f64 = arenas.iter().map(|a| a.share_gbs).sum();

    let sort = predict_alloc(
        spec,
        view,
        SortAlgo::Mctop,
        place.capacity(),
        &SortModelCfg::default(),
        policy,
    )
    .expect("policy evaluates on enriched topologies");
    let wordcount = mctop_mapred::model::fig10_profiles()
        .into_iter()
        .find(|p| p.name == "Word Count")
        .expect("Word Count profile exists");
    let mapred = mctop_mapred::model::exec_time_alloc(spec, view, place, &wordcount, policy)
        .expect("policy evaluates on enriched topologies");

    PolicyRow {
        policy: policy.to_string(),
        mean_latency_cycles: mean_latency,
        aggregate_bw_gbs: aggregate_bw,
        sort_merge_s: sort.merge_s,
        mapred_wordcount_s: mapred,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_alloc.json".into());

    let mut platforms = Vec::new();
    for spec in mcsim::presets::all_paper_platforms() {
        let view = mctop_bench::enriched_view(&spec);
        // One worker per physical core: the streaming sweet spot (SMT
        // siblings share load ports and add no bandwidth).
        let workers = view.num_cores();
        let place = Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(workers))
            .expect("RR placement succeeds");
        let saturation: Vec<usize> = (0..view.num_sockets())
            .map(|s| mctop_alloc::plan::saturation_threads(&view, s).expect("enriched"))
            .collect();
        let policies: Vec<PolicyRow> = [
            AllocPolicy::Local,
            AllocPolicy::Interleave,
            AllocPolicy::BwProportional,
        ]
        .iter()
        .map(|p| row(&spec, &view, &place, p))
        .collect();
        eprintln!(
            "{:<9} {:>3} workers  lat {:>6.1}/{:>6.1}/{:>6.1} cy  bw {:>6.1}/{:>6.1}/{:>6.1} GB/s",
            spec.name,
            workers,
            policies[0].mean_latency_cycles,
            policies[1].mean_latency_cycles,
            policies[2].mean_latency_cycles,
            policies[0].aggregate_bw_gbs,
            policies[1].aggregate_bw_gbs,
            policies[2].aggregate_bw_gbs,
        );
        platforms.push(Platform {
            preset: spec.name.clone(),
            workers,
            saturation_threads: saturation,
            policies,
        });
    }

    let report = Report {
        bench: "alloc",
        bytes_per_worker: AllocCfg::default().bytes_per_worker,
        platforms,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&out_path, &json).expect("write report");
    eprintln!("wrote {out_path}");
}
