//! Real-thread parallel-for runtime (the host-execution path of
//! Fig. 12): PageRank under different binding policies.

use criterion::{criterion_group, criterion_main, Criterion};
use mctop_bench::enriched_topology;
use mctop_omp::graph::Graph;
use mctop_omp::workloads::pagerank;
use mctop_omp::OmpRuntime;
use mctop_place::Policy;
use std::time::Duration;

fn bench_omp(c: &mut Criterion) {
    let mut g = c.benchmark_group("omp");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let spec = mcsim::presets::synthetic_small();
    let topo = enriched_topology(&spec);
    let graph = Graph::synthetic(20_000, 8, 3);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(8);
    let rt = OmpRuntime::new(topo, threads);
    for policy in [Policy::None, Policy::BalanceCore, Policy::ConCoreHwc] {
        rt.set_binding_policy(policy).unwrap();
        g.bench_function(format!("pagerank/{}", policy.name()), |b| {
            b.iter(|| pagerank(&rt, &graph, 2))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_omp);
criterion_main!(benches);
