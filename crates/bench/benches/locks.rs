//! Real-thread lock throughput (the host-execution path of Fig. 8):
//! each algorithm with and without the educated backoff. Contenders
//! run on a placement-pinned worker pool (CON_HWC over the shipped ivy
//! description), so the benchmark honors the placement it is given.

use criterion::{criterion_group, criterion_main, Criterion};
use mctop_locks::backoff::BackoffCfg;
use mctop_locks::harness::{run, HarnessCfg};
use mctop_locks::LockAlgo;
use mctop_place::{PlaceOpts, Placement, Policy};
use mctop_runtime::WorkerPool;
use std::sync::Arc;
use std::time::Duration;

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let view = mctop::Registry::shipped()
        .view("ivy")
        .expect("shipped description");
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(view.num_hwcs());
    let place = Arc::new(
        Placement::with_view(&view, Policy::ConHwc, PlaceOpts::threads(threads))
            .expect("CON_HWC placement"),
    );
    let pool = WorkerPool::new(place);
    let cfg = HarnessCfg {
        cs_work: 1000,
        noncs_work: 600,
        duration: Duration::from_millis(50),
    };
    for algo in LockAlgo::ALL {
        g.bench_function(format!("{}/pause", algo.name()), |b| {
            b.iter(|| run(&pool, algo, BackoffCfg::none(), &cfg).ops)
        });
        g.bench_function(format!("{}/educated", algo.name()), |b| {
            b.iter(|| {
                run(
                    &pool,
                    algo,
                    BackoffCfg {
                        quantum_cycles: 300,
                    },
                    &cfg,
                )
                .ops
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_locks);
criterion_main!(benches);
