//! Naive `Mctop` queries vs precomputed `TopoView` lookups on the
//! largest paper platform (the 512-context SPARC), tracking the speedup
//! the view layer buys inside placement/merge loops.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mctop_bench::enriched_view;
use std::time::Duration;

fn bench_queries(c: &mut Criterion) {
    let spec = mcsim::presets::sparc();
    let view = enriched_view(&spec);
    let topo = view.topo().clone();
    let n = topo.num_sockets();

    let mut g = c.benchmark_group("queries");
    g.sample_size(30).measurement_time(Duration::from_secs(2));

    g.bench_function("closest_sockets/naive", |b| {
        b.iter(|| {
            let mut total = 0;
            for s in 0..n {
                total += topo.closest_sockets(black_box(s)).len();
            }
            total
        })
    });
    g.bench_function("closest_sockets/view", |b| {
        b.iter(|| {
            let mut total = 0;
            for s in 0..n {
                total += view.closest_sockets(black_box(s)).len();
            }
            total
        })
    });

    g.bench_function("socket_latency/naive", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for a in 0..n {
                for bb in 0..n {
                    acc += u64::from(topo.socket_latency(black_box(a), black_box(bb)));
                }
            }
            acc
        })
    });
    g.bench_function("socket_latency/view", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for a in 0..n {
                for bb in 0..n {
                    acc += u64::from(view.socket_latency(black_box(a), black_box(bb)));
                }
            }
            acc
        })
    });

    g.bench_function("min_latency_pair/naive", |b| {
        b.iter(|| topo.min_latency_socket_pair())
    });
    g.bench_function("min_latency_pair/view", |b| {
        b.iter(|| view.min_latency_socket_pair())
    });

    g.bench_function("socket_order/naive", |b| {
        b.iter(|| topo.socket_order_bandwidth_proximity())
    });
    g.bench_function("socket_order/view", |b| {
        b.iter(|| view.socket_order_bandwidth_proximity().len())
    });

    let hwcs: Vec<usize> = (0..topo.num_hwcs()).step_by(7).collect();
    g.bench_function("sockets_used_by/naive", |b| {
        b.iter(|| topo.sockets_used_by(black_box(&hwcs)))
    });
    g.bench_function("sockets_used_by/view", |b| {
        b.iter(|| view.sockets_used_by(black_box(&hwcs)))
    });

    g.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
