//! MCTOP-ALG inference cost on the simulated platforms (the quantity
//! behind Section 3.5's "~3 s on Ivy, 96 s on Westmere").

use criterion::{criterion_group, criterion_main, Criterion};
use mctop::backend::SimProber;
use mctop::ProbeConfig;
use std::time::Duration;

fn bench_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("inference");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for spec in [mcsim::presets::ivy(), mcsim::presets::opteron()] {
        g.bench_function(format!("mctop_alg/{}", spec.name), |b| {
            b.iter(|| {
                let mut p = SimProber::noiseless(&spec);
                let cfg = ProbeConfig {
                    reps: 5,
                    ..ProbeConfig::fast()
                };
                mctop::infer(&mut p, &cfg).unwrap().num_sockets()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
