//! Real-thread sorting (the host-execution path of Fig. 9):
//! mctop_sort vs the gnu_parallel-like baseline vs the SSE variant.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mctop_bench::enriched_view;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let spec = mcsim::presets::synthetic_small();
    let view = enriched_view(&spec);
    let mut rng = SmallRng::seed_from_u64(1);
    let data: Vec<u32> = (0..1 << 20).map(|_| rng.gen()).collect();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2);

    g.bench_function("baseline_gnu_like", |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| mctop_sort::baseline_sort(&mut v, threads),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("mctop_sort", |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| mctop_sort::mctop_sort_with_view(&mut v, &view, threads, 0),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("mctop_sort_sse", |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| mctop_sort::mctop_sort_sse_with_view(&mut v, &view, threads, 0),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_sort);
criterion_main!(benches);
