//! Real-thread MapReduce (the host-execution path of Fig. 10):
//! Word Count under the sequential vs RR placements.

use criterion::{criterion_group, criterion_main, Criterion};
use mctop_bench::enriched_topology;
use mctop_mapred::engine::{run_job, EngineCfg};
use mctop_mapred::workloads::{gen_text, WordCount};
use mctop_place::{PlaceOpts, Placement, Policy};
use std::time::Duration;

fn bench_mapred(c: &mut Criterion) {
    let mut g = c.benchmark_group("mapred");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let spec = mcsim::presets::synthetic_small();
    let topo = enriched_topology(&spec);
    let text = gen_text(4000, 40, 5000, 7);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(8);
    for policy in [Policy::Sequential, Policy::RrCore, Policy::ConCoreHwc] {
        let place = Placement::new(&topo, policy, PlaceOpts::threads(threads)).unwrap();
        g.bench_function(format!("wordcount/{}", policy.name()), |b| {
            b.iter(|| run_job(&WordCount, &text, &place, &EngineCfg::default()).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mapred);
criterion_main!(benches);
