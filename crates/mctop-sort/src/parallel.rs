//! The parallel sorting algorithms: `mctop_sort`, `mctop_sort_sse`,
//! and the topology-agnostic baseline (the shape of
//! `__gnu_parallel::sort`). All three run on real host threads; the
//! per-platform performance claims of Fig. 9 come from
//! [`crate::model`] over the simulated machines.

use mctop::view::TopoView;
use mctop::Mctop;
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};

use crate::merge::{
    merge_into,
    parallel_merge, //
};
use crate::seq::quicksort;
use crate::tree::MergeTree;

/// Which merge kernel the cross-socket phase uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Scalar,
    Bitonic,
}

/// Sorts `data` with the topology-aware mergesort of Section 7.2:
/// chunks are quicksorted in parallel (threads spread with the RR
/// policy to benefit from every socket's LLC), per-socket runs are
/// merged cooperatively inside each socket, and the per-socket runs are
/// merged along the bandwidth-maximizing cross-socket tree, rooted at
/// socket `dest`.
pub fn mctop_sort(data: &mut Vec<u32>, topo: &Mctop, n_threads: usize, dest: usize) {
    if data.len() < 2 {
        return;
    }
    let view = TopoView::new(std::sync::Arc::new(topo.clone()));
    sort_impl(data, &view, n_threads, dest, Kernel::Scalar);
}

/// `mctop_sort` with the bitonic (SIMD-style) merge kernel for the
/// cross-socket merges.
pub fn mctop_sort_sse(data: &mut Vec<u32>, topo: &Mctop, n_threads: usize, dest: usize) {
    if data.len() < 2 {
        return;
    }
    let view = TopoView::new(std::sync::Arc::new(topo.clone()));
    sort_impl(data, &view, n_threads, dest, Kernel::Bitonic);
}

/// [`mctop_sort`] over a prebuilt topology view — the repeated-sort
/// path (no per-call topology clone or view construction).
pub fn mctop_sort_with_view(data: &mut Vec<u32>, view: &TopoView, n_threads: usize, dest: usize) {
    sort_impl(data, view, n_threads, dest, Kernel::Scalar);
}

/// [`mctop_sort_sse`] over a prebuilt topology view.
pub fn mctop_sort_sse_with_view(
    data: &mut Vec<u32>,
    view: &TopoView,
    n_threads: usize,
    dest: usize,
) {
    sort_impl(data, view, n_threads, dest, Kernel::Bitonic);
}

fn sort_impl(data: &mut Vec<u32>, topo: &TopoView, n_threads: usize, dest: usize, kernel: Kernel) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let n_threads = n_threads.clamp(1, topo.num_hwcs());
    // Spread threads across sockets (RR policy, as the paper does, "in
    // order to benefit from the large LLCs of each socket").
    let placement = Placement::with_view(topo, Policy::RrCore, PlaceOpts::threads(n_threads))
        .expect("RR placement always succeeds");

    // --- Phase 1: parallel chunk quicksort -----------------------------
    let chunk = n.div_ceil(n_threads);
    std::thread::scope(|scope| {
        for piece in data.chunks_mut(chunk) {
            scope.spawn(|| quicksort(piece));
        }
    });

    // --- Phase 2: per-socket cooperative merging ------------------------
    // Assign each chunk to the socket of the worker that sorted it.
    let order = placement.order();
    let mut socket_runs: Vec<Vec<Vec<u32>>> = vec![Vec::new(); topo.num_sockets()];
    for (idx, piece) in data.chunks(chunk).enumerate() {
        let socket = topo.socket_of(order[idx % order.len()]);
        socket_runs[socket].push(piece.to_vec());
    }
    let threads_of_socket = |s: usize| -> usize {
        order
            .iter()
            .filter(|&&h| topo.socket_of(h) == s)
            .count()
            .max(1)
    };
    // Merge within each socket (all its threads cooperate) until one
    // run per socket; sockets merge concurrently.
    let mut per_socket: Vec<(usize, Vec<u32>)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (s, runs) in socket_runs.into_iter().enumerate() {
            if runs.is_empty() {
                continue;
            }
            let k = threads_of_socket(s);
            handles.push((s, scope.spawn(move || reduce_runs(runs, k))));
        }
        for (s, h) in handles {
            per_socket.push((s, h.join().expect("socket merge panicked")));
        }
    });
    per_socket.sort_by_key(|&(s, _)| s);

    // --- Phase 3: cross-socket tree merge --------------------------------
    let sockets: Vec<usize> = per_socket.iter().map(|&(s, _)| s).collect();
    let dest = if sockets.contains(&dest) {
        dest
    } else {
        sockets[0]
    };
    let tree = MergeTree::build(topo, &sockets, dest);
    let mut run_of: std::collections::BTreeMap<usize, Vec<u32>> = per_socket.into_iter().collect();
    for level in &tree.levels {
        // Steps in a level are independent; run them in parallel.
        let mut inputs = Vec::new();
        for step in level {
            let a = run_of.remove(&step.dst).expect("dst run exists");
            let b = run_of.remove(&step.src).expect("src run exists");
            // Threads of both participating sockets cooperate.
            let k = threads_of_socket(step.dst) + threads_of_socket(step.src);
            inputs.push((step.dst, a, b, k));
        }
        let merged: Vec<(usize, Vec<u32>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .into_iter()
                .map(|(dst, a, b, k)| {
                    scope.spawn(move || {
                        let mut out = vec![0u32; a.len() + b.len()];
                        match kernel {
                            Kernel::Scalar => parallel_merge(&a, &b, &mut out, k),
                            Kernel::Bitonic => bitonic_cooperative(&a, &b, &mut out, k),
                        }
                        (dst, out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("merge panicked"))
                .collect()
        });
        for (dst, run) in merged {
            run_of.insert(dst, run);
        }
    }
    let final_run = run_of.remove(&dest).expect("root run");
    debug_assert_eq!(final_run.len(), n);
    *data = final_run;
}

/// Pairwise-reduces runs to one, using `k` cooperating threads per
/// merge.
fn reduce_runs(mut runs: Vec<Vec<u32>>, k: usize) -> Vec<u32> {
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        let mut pairs = Vec::new();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => pairs.push((a, b)),
                None => next.push(a),
            }
        }
        let threads_per_pair = (k / pairs.len().max(1)).max(1);
        let merged: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .into_iter()
                .map(|(a, b)| {
                    scope.spawn(move || {
                        let mut out = vec![0u32; a.len() + b.len()];
                        parallel_merge(&a, &b, &mut out, threads_per_pair);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("merge panicked"))
                .collect()
        });
        next.extend(merged);
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

/// SSE-style cooperative merge: the first context of each core uses the
/// bitonic kernel and is given three times more data than the scalar
/// threads (Section 7.2). Here: split the merge into `k` merge-path
/// segments with a 3:1 weight for the bitonic half.
fn bitonic_cooperative(a: &[u32], b: &[u32], out: &mut [u32], k: usize) {
    if k <= 1 || out.len() < 4096 {
        crate::bitonic::merge_bitonic(a, b, out);
        return;
    }
    // Half the workers use the bitonic kernel with weight 3.
    let simd_workers = k.div_ceil(2);
    let scalar_workers = k - simd_workers;
    let total_weight = simd_workers * 3 + scalar_workers;
    let total = a.len() + b.len();
    let mut boundaries = vec![0usize];
    let mut acc = 0usize;
    for w in 0..k {
        acc += if w < simd_workers { 3 } else { 1 };
        boundaries.push(total * acc / total_weight);
    }
    let cuts: Vec<(usize, usize)> = boundaries
        .iter()
        .map(|&d| crate::merge::co_rank(d, a, b))
        .collect();
    let out_len = out.len();
    let mut rest = out;
    let mut taken = 0usize;
    std::thread::scope(|scope| {
        for w in 0..k {
            let (i0, j0) = cuts[w];
            let (i1, j1) = cuts[w + 1];
            let len = (i1 - i0) + (j1 - j0);
            let (window, tail) = rest.split_at_mut(len);
            taken += len;
            rest = tail;
            let sa = &a[i0..i1];
            let sb = &b[j0..j1];
            let simd = w < simd_workers;
            scope.spawn(move || {
                if simd {
                    crate::bitonic::merge_bitonic(sa, sb, window);
                } else {
                    merge_into(sa, sb, window);
                }
            });
        }
    });
    debug_assert_eq!(taken, out_len);
    let _ = taken;
}

/// The topology-agnostic baseline, shaped like `__gnu_parallel::sort`:
/// parallel chunk quicksort, then iterative pairwise parallel merging —
/// no placement, no NUMA awareness.
pub fn baseline_sort(data: &mut Vec<u32>, n_threads: usize) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let n_threads = n_threads.max(1);
    let chunk = n.div_ceil(n_threads);
    std::thread::scope(|scope| {
        for piece in data.chunks_mut(chunk) {
            scope.spawn(|| quicksort(piece));
        }
    });
    let runs: Vec<Vec<u32>> = data.chunks(chunk).map(|c| c.to_vec()).collect();
    *data = reduce_runs(runs, n_threads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{
        Rng,
        SeedableRng, //
    };

    fn topo() -> Mctop {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let mut t = mctop::infer(&mut p, &cfg).unwrap();
        let mut e = mctop::enrich::SimEnricher::new(&spec);
        let mut pw = mctop::enrich::SimEnricher::new(&spec);
        mctop::enrich::enrich_all(&mut t, &mut e, &mut pw).unwrap();
        t
    }

    fn random(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    fn checksum(v: &[u32]) -> u64 {
        v.iter().map(|&x| u64::from(x)).sum()
    }

    #[test]
    fn mctop_sort_sorts() {
        let t = topo();
        for n in [0usize, 1, 100, 100_000, 262_144] {
            let mut v = random(n, 42);
            let sum = checksum(&v);
            mctop_sort(&mut v, &t, 8, 0);
            assert_eq!(v.len(), n);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "n={n}");
            assert_eq!(checksum(&v), sum, "n={n}: elements lost");
        }
    }

    #[test]
    fn mctop_sort_sse_sorts() {
        let t = topo();
        let mut v = random(200_000, 7);
        let mut expected = v.clone();
        expected.sort_unstable();
        mctop_sort_sse(&mut v, &t, 8, 0);
        assert_eq!(v, expected);
    }

    #[test]
    fn baseline_sorts() {
        for threads in [1usize, 2, 4, 7] {
            let mut v = random(150_000, threads as u64);
            let mut expected = v.clone();
            expected.sort_unstable();
            baseline_sort(&mut v, threads);
            assert_eq!(v, expected, "threads={threads}");
        }
    }

    #[test]
    fn different_destinations_work() {
        let t = topo();
        for dest in 0..t.num_sockets() {
            let mut v = random(50_000, dest as u64);
            mctop_sort(&mut v, &t, 6, dest);
            assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn single_thread_degenerate() {
        let t = topo();
        let mut v = random(10_000, 3);
        let mut expected = v.clone();
        expected.sort_unstable();
        mctop_sort(&mut v, &t, 1, 0);
        assert_eq!(v, expected);
    }
}
