//! The parallel sorting algorithms: `mctop_sort`, `mctop_sort_sse`,
//! and the topology-agnostic baseline (the shape of
//! `__gnu_parallel::sort`). All three run on real host threads; the
//! per-platform performance claims of Fig. 9 come from
//! [`crate::model`] over the simulated machines.
//!
//! Every phase of `mctop_sort` executes on the persistent
//! [`mctop_runtime::Executor`]: chunk quicksorts, per-socket merge
//! rounds, and the cross-socket tree merges are all submitted as
//! tasks to placement-pinned workers instead of spawning fresh
//! scoped threads per phase. The repeated-sort path is
//! [`mctop_sort_on`], which reuses a caller-owned executor; the
//! convenience entry points arm a transient one per call.
//!
//! Determinism: chunk boundaries, socket assignment and every
//! merge-path split depend only on the data, the worker count and the
//! placement — never on which worker executes a task — so the sorted
//! output is byte-identical across executors, worker counts and steal
//! schedules.

use std::collections::BTreeMap;
use std::sync::Arc;

use mctop::view::TopoView;
use mctop::Mctop;
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};
use mctop_runtime::{
    ExecCfg,
    Executor, //
};

use crate::merge::{
    merge_into,
    merge_jobs,
    parallel_merge, //
};
use crate::seq::quicksort;
use crate::simd::KernelTable;
use crate::tree::MergeTree;

/// Which merge kernel the merge phases use. `Vector(table)` carries
/// the kernel resolved **once** per sort (auto-detected or forced), so
/// per-job dispatch is a plain function-pointer call.
#[derive(Debug, Clone, Copy)]
enum Kernel {
    Scalar,
    Vector(&'static KernelTable),
}

/// One tagged merge segment: `(use_vector_kernel, a, b, out_window)`.
type TaggedJob<'a> = (bool, &'a [u32], &'a [u32], &'a mut [u32]);

/// Reusable merge scratch for the persistent-sort entry points
/// ([`mctop_sort_on`] / [`mctop_sort_sse_on`]): a pool of `Vec<u32>`
/// buffers recycled across merge rounds **and across sorts**, so a
/// steady stream of similar-sized sorts stops paying one allocation
/// per merge pair per round (the same caller-owned-state pattern the
/// probe sample buffers use).
#[derive(Debug, Default)]
pub struct SortScratch {
    pool: Vec<Vec<u32>>,
}

impl SortScratch {
    /// An empty scratch pool.
    pub fn new() -> SortScratch {
        SortScratch::default()
    }

    /// A zeroed buffer of exactly `len`, recycled when possible.
    fn take(&mut self, len: usize) -> Vec<u32> {
        match self.pool.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(len, 0);
                v
            }
            None => vec![0u32; len],
        }
    }

    /// A recycled buffer holding a copy of `src` (no zero-fill pass).
    fn take_copy(&mut self, src: &[u32]) -> Vec<u32> {
        let mut v = self.pool.pop().unwrap_or_default();
        v.clear();
        v.extend_from_slice(src);
        v
    }

    /// Returns a buffer to the pool for the next round or sort.
    fn put(&mut self, v: Vec<u32>) {
        if v.capacity() > 0 {
            self.pool.push(v);
        }
    }

    /// Total capacity currently pooled, in elements.
    pub fn pooled_elements(&self) -> usize {
        self.pool.iter().map(Vec::capacity).sum()
    }
}

/// Sorts `data` with the topology-aware mergesort of Section 7.2:
/// chunks are quicksorted in parallel (threads spread with the RR
/// policy to benefit from every socket's LLC), per-socket runs are
/// merged cooperatively inside each socket, and the per-socket runs are
/// merged along the bandwidth-maximizing cross-socket tree, rooted at
/// socket `dest`.
pub fn mctop_sort(data: &mut Vec<u32>, topo: &Mctop, n_threads: usize, dest: usize) {
    if data.len() < 2 {
        return;
    }
    let view = TopoView::new(Arc::new(topo.clone()));
    sort_impl(data, &view, n_threads, dest, Kernel::Scalar);
}

/// `mctop_sort` with the bitonic (SIMD-style) merge kernel for the
/// cross-socket merges.
pub fn mctop_sort_sse(data: &mut Vec<u32>, topo: &Mctop, n_threads: usize, dest: usize) {
    if data.len() < 2 {
        return;
    }
    let view = TopoView::new(Arc::new(topo.clone()));
    sort_impl(
        data,
        &view,
        n_threads,
        dest,
        Kernel::Vector(crate::simd::auto()),
    );
}

/// [`mctop_sort`] over a prebuilt topology view — no per-call topology
/// clone or view construction (a transient executor is still armed;
/// the fully persistent path is [`mctop_sort_on`]).
pub fn mctop_sort_with_view(data: &mut Vec<u32>, view: &TopoView, n_threads: usize, dest: usize) {
    sort_impl(data, view, n_threads, dest, Kernel::Scalar);
}

/// [`mctop_sort_sse`] over a prebuilt topology view.
pub fn mctop_sort_sse_with_view(
    data: &mut Vec<u32>,
    view: &TopoView,
    n_threads: usize,
    dest: usize,
) {
    sort_impl(
        data,
        view,
        n_threads,
        dest,
        Kernel::Vector(crate::simd::auto()),
    );
}

/// [`mctop_sort`] on a caller-owned persistent executor: the
/// repeated-sort hot path. Worker count and socket assignment come
/// from the executor's placement; nothing is spawned or pinned per
/// call, and `scratch` recycles every merge buffer across calls.
pub fn mctop_sort_on(
    exec: &Executor,
    data: &mut Vec<u32>,
    view: &TopoView,
    dest: usize,
    scratch: &mut SortScratch,
) {
    sort_on_impl(data, view, exec, dest, Kernel::Scalar, scratch);
}

/// [`mctop_sort_sse`] on a caller-owned persistent executor: the
/// vector merge kernel is resolved once per sort via
/// [`crate::simd::auto`] (runtime feature detection, scalar network
/// fallback).
pub fn mctop_sort_sse_on(
    exec: &Executor,
    data: &mut Vec<u32>,
    view: &TopoView,
    dest: usize,
    scratch: &mut SortScratch,
) {
    sort_on_impl(
        data,
        view,
        exec,
        dest,
        Kernel::Vector(crate::simd::auto()),
        scratch,
    );
}

/// [`mctop_sort_sse_on`] with an explicit kernel table — the bench /
/// test hook for forcing a specific kernel (e.g. comparing
/// [`crate::simd::scalar`] against [`crate::simd::auto`] end to end).
pub fn mctop_sort_kernel_on(
    exec: &Executor,
    data: &mut Vec<u32>,
    view: &TopoView,
    dest: usize,
    scratch: &mut SortScratch,
    table: &'static KernelTable,
) {
    sort_on_impl(data, view, exec, dest, Kernel::Vector(table), scratch);
}

fn sort_impl(data: &mut Vec<u32>, view: &TopoView, n_threads: usize, dest: usize, kernel: Kernel) {
    if data.len() < 2 {
        return;
    }
    let n_threads = n_threads.clamp(1, view.num_hwcs());
    // Spread threads across sockets (RR policy, as the paper does, "in
    // order to benefit from the large LLCs of each socket").
    let placement = Placement::with_view(view, Policy::RrCore, PlaceOpts::threads(n_threads))
        .expect("RR placement always succeeds");
    let exec = Executor::with_cfg(Some(view), &placement, ExecCfg::default());
    sort_on_impl(data, view, &exec, dest, kernel, &mut SortScratch::new());
}

fn sort_on_impl(
    data: &mut Vec<u32>,
    view: &TopoView,
    exec: &Executor,
    dest: usize,
    kernel: Kernel,
    scratch: &mut SortScratch,
) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let ctxs = exec.worker_ctxs();
    let n_threads = ctxs.len();
    let threads_of_socket =
        |s: usize| -> usize { ctxs.iter().filter(|c| c.socket() == s).count().max(1) };

    // --- Phase 1: parallel chunk quicksort -----------------------------
    let chunk = n.div_ceil(n_threads);
    exec.scope(|sc| {
        for piece in data.chunks_mut(chunk) {
            sc.spawn(move || quicksort(piece));
        }
    });

    // --- Phase 2: per-socket cooperative merging ------------------------
    // Assign each chunk to the socket of the worker that sorted it.
    let mut socket_runs: Vec<Vec<Vec<u32>>> = vec![Vec::new(); view.num_sockets()];
    for (idx, piece) in data.chunks(chunk).enumerate() {
        let socket = ctxs[idx % n_threads].socket();
        socket_runs[socket].push(scratch.take_copy(piece));
    }
    // Merge within each socket (all its threads cooperate) until one
    // run per socket. Each round pairs up every socket's runs and
    // submits all merge segments of all sockets in one scope, so the
    // sockets still merge concurrently.
    struct PairMerge {
        socket: usize,
        a: Vec<u32>,
        b: Vec<u32>,
        out: Vec<u32>,
        threads: usize,
    }
    while socket_runs.iter().any(|runs| runs.len() > 1) {
        let mut round: Vec<PairMerge> = Vec::new();
        for (s, runs) in socket_runs.iter_mut().enumerate() {
            if runs.len() <= 1 {
                continue;
            }
            let k = threads_of_socket(s);
            let taken = std::mem::take(runs);
            let mut iter = taken.into_iter();
            let mut pairs = Vec::new();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => pairs.push((a, b)),
                    None => runs.push(a),
                }
            }
            let threads = (k / pairs.len().max(1)).max(1);
            for (a, b) in pairs {
                let out = scratch.take(a.len() + b.len());
                round.push(PairMerge {
                    socket: s,
                    a,
                    b,
                    out,
                    threads,
                });
            }
        }
        let mut jobs: Vec<TaggedJob<'_>> = Vec::new();
        for pm in round.iter_mut() {
            jobs.extend(kernel_jobs(&pm.a, &pm.b, &mut pm.out, pm.threads, kernel));
        }
        run_jobs(exec, kernel, jobs);
        for pm in round {
            socket_runs[pm.socket].push(pm.out);
            scratch.put(pm.a);
            scratch.put(pm.b);
        }
    }
    let per_socket: Vec<(usize, Vec<u32>)> = socket_runs
        .into_iter()
        .enumerate()
        .filter_map(|(s, mut runs)| runs.pop().map(|run| (s, run)))
        .collect();

    // --- Phase 3: cross-socket tree merge --------------------------------
    let sockets: Vec<usize> = per_socket.iter().map(|&(s, _)| s).collect();
    let dest = if sockets.contains(&dest) {
        dest
    } else {
        sockets[0]
    };
    let tree = MergeTree::build(view, &sockets, dest);
    let mut run_of: BTreeMap<usize, Vec<u32>> = per_socket.into_iter().collect();
    struct StepMerge {
        dst: usize,
        a: Vec<u32>,
        b: Vec<u32>,
        out: Vec<u32>,
        threads: usize,
    }
    for level in &tree.levels {
        // Steps in a level are independent; all their segments go into
        // one scope. Threads of both participating sockets cooperate.
        let mut steps: Vec<StepMerge> = Vec::new();
        for step in level {
            let a = run_of.remove(&step.dst).expect("dst run exists");
            let b = run_of.remove(&step.src).expect("src run exists");
            let threads = threads_of_socket(step.dst) + threads_of_socket(step.src);
            let out = scratch.take(a.len() + b.len());
            steps.push(StepMerge {
                dst: step.dst,
                a,
                b,
                out,
                threads,
            });
        }
        let mut jobs: Vec<TaggedJob<'_>> = Vec::new();
        for sm in steps.iter_mut() {
            jobs.extend(kernel_jobs(&sm.a, &sm.b, &mut sm.out, sm.threads, kernel));
        }
        run_jobs(exec, kernel, jobs);
        for sm in steps {
            run_of.insert(sm.dst, sm.out);
            scratch.put(sm.a);
            scratch.put(sm.b);
        }
    }
    let final_run = run_of.remove(&dest).expect("root run");
    debug_assert_eq!(final_run.len(), n);
    scratch.put(std::mem::replace(data, final_run));
}

/// Splits one pair merge into tagged executor jobs for the chosen
/// kernel.
fn kernel_jobs<'a>(
    a: &'a [u32],
    b: &'a [u32],
    out: &'a mut [u32],
    k: usize,
    kernel: Kernel,
) -> Vec<TaggedJob<'a>> {
    match kernel {
        Kernel::Scalar => merge_jobs(a, b, out, k)
            .into_iter()
            .map(|(sa, sb, window)| (false, sa, sb, window))
            .collect(),
        Kernel::Vector(_) => bitonic_jobs(a, b, out, k),
    }
}

/// Submits one scope running every tagged segment. Vector-tagged
/// segments go through the kernel the sort resolved once; the rest use
/// the scalar two-way merge.
fn run_jobs(exec: &Executor, kernel: Kernel, jobs: Vec<TaggedJob<'_>>) {
    let vector: crate::simd::MergeFn = match kernel {
        // Unused: Kernel::Scalar tags every job false.
        Kernel::Scalar => merge_into,
        Kernel::Vector(table) => table.merge,
    };
    exec.scope(|sc| {
        for (simd, sa, sb, window) in jobs {
            sc.spawn(move || {
                if simd {
                    vector(sa, sb, window);
                } else {
                    merge_into(sa, sb, window);
                }
            });
        }
    });
}

/// SSE-style cooperative merge split: the first context of each core
/// uses the bitonic kernel and is given three times more data than the
/// scalar threads (Section 7.2) — `k` merge-path segments with a 3:1
/// weight for the bitonic half.
fn bitonic_jobs<'a>(
    a: &'a [u32],
    b: &'a [u32],
    out: &'a mut [u32],
    k: usize,
) -> Vec<TaggedJob<'a>> {
    if k <= 1 || out.len() < 4096 {
        return vec![(true, a, b, out)];
    }
    // Half the workers use the bitonic kernel with weight 3.
    let simd_workers = k.div_ceil(2);
    let scalar_workers = k - simd_workers;
    let total_weight = simd_workers * 3 + scalar_workers;
    let total = a.len() + b.len();
    let mut boundaries = vec![0usize];
    let mut acc = 0usize;
    for w in 0..k {
        acc += if w < simd_workers { 3 } else { 1 };
        boundaries.push(total * acc / total_weight);
    }
    let cuts: Vec<(usize, usize)> = boundaries
        .iter()
        .map(|&d| crate::merge::co_rank(d, a, b))
        .collect();
    let mut jobs = Vec::with_capacity(k);
    let mut rest = out;
    for w in 0..k {
        let (i0, j0) = cuts[w];
        let (i1, j1) = cuts[w + 1];
        let len = (i1 - i0) + (j1 - j0);
        let (window, tail) = rest.split_at_mut(len);
        rest = tail;
        jobs.push((w < simd_workers, &a[i0..i1], &b[j0..j1], window));
    }
    debug_assert!(rest.is_empty());
    jobs
}

/// Pairwise-reduces runs to one, using `k` cooperating threads per
/// merge (scoped threads: this is the topology-agnostic baseline's
/// merge loop).
fn reduce_runs(mut runs: Vec<Vec<u32>>, k: usize) -> Vec<u32> {
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        let mut pairs = Vec::new();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => pairs.push((a, b)),
                None => next.push(a),
            }
        }
        let threads_per_pair = (k / pairs.len().max(1)).max(1);
        let merged: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .into_iter()
                .map(|(a, b)| {
                    scope.spawn(move || {
                        let mut out = vec![0u32; a.len() + b.len()];
                        parallel_merge(&a, &b, &mut out, threads_per_pair);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("merge panicked"))
                .collect()
        });
        next.extend(merged);
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

/// The topology-agnostic baseline, shaped like `__gnu_parallel::sort`:
/// parallel chunk quicksort, then iterative pairwise parallel merging —
/// no placement, no NUMA awareness, fresh scoped threads per call (the
/// comparison point the executor-backed paths are measured against).
pub fn baseline_sort(data: &mut Vec<u32>, n_threads: usize) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let n_threads = n_threads.max(1);
    let chunk = n.div_ceil(n_threads);
    std::thread::scope(|scope| {
        for piece in data.chunks_mut(chunk) {
            scope.spawn(|| quicksort(piece));
        }
    });
    let runs: Vec<Vec<u32>> = data.chunks(chunk).map(|c| c.to_vec()).collect();
    *data = reduce_runs(runs, n_threads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{
        Rng,
        SeedableRng, //
    };

    fn topo() -> Mctop {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let mut t = mctop::infer(&mut p, &cfg).unwrap();
        let mut e = mctop::enrich::SimEnricher::new(&spec);
        let mut pw = mctop::enrich::SimEnricher::new(&spec);
        mctop::enrich::enrich_all(&mut t, &mut e, &mut pw).unwrap();
        t
    }

    fn random(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    fn checksum(v: &[u32]) -> u64 {
        v.iter().map(|&x| u64::from(x)).sum()
    }

    #[test]
    fn mctop_sort_sorts() {
        let t = topo();
        for n in [0usize, 1, 100, 100_000, 262_144] {
            let mut v = random(n, 42);
            let sum = checksum(&v);
            mctop_sort(&mut v, &t, 8, 0);
            assert_eq!(v.len(), n);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "n={n}");
            assert_eq!(checksum(&v), sum, "n={n}: elements lost");
        }
    }

    #[test]
    fn mctop_sort_sse_sorts() {
        let t = topo();
        let mut v = random(200_000, 7);
        let mut expected = v.clone();
        expected.sort_unstable();
        mctop_sort_sse(&mut v, &t, 8, 0);
        assert_eq!(v, expected);
    }

    #[test]
    fn baseline_sorts() {
        for threads in [1usize, 2, 4, 7] {
            let mut v = random(150_000, threads as u64);
            let mut expected = v.clone();
            expected.sort_unstable();
            baseline_sort(&mut v, threads);
            assert_eq!(v, expected, "threads={threads}");
        }
    }

    #[test]
    fn different_destinations_work() {
        let t = topo();
        for dest in 0..t.num_sockets() {
            let mut v = random(50_000, dest as u64);
            mctop_sort(&mut v, &t, 6, dest);
            assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn single_thread_degenerate() {
        let t = topo();
        let mut v = random(10_000, 3);
        let mut expected = v.clone();
        expected.sort_unstable();
        mctop_sort(&mut v, &t, 1, 0);
        assert_eq!(v, expected);
    }

    #[test]
    fn persistent_executor_sorts_repeatedly() {
        let view = TopoView::new(Arc::new(topo()));
        let placement = Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(6)).unwrap();
        let exec = Executor::new(&view, &placement);
        let mut scratch = SortScratch::new();
        for (round, n) in [10_000usize, 0, 1, 120_000, 4096].into_iter().enumerate() {
            let mut v = random(n, round as u64);
            let mut expected = v.clone();
            expected.sort_unstable();
            mctop_sort_on(&exec, &mut v, &view, round % 2, &mut scratch);
            assert_eq!(v, expected, "round={round}");
            let mut w = random(n, round as u64 + 100);
            let mut expected_sse = w.clone();
            expected_sse.sort_unstable();
            mctop_sort_sse_on(&exec, &mut w, &view, 0, &mut scratch);
            assert_eq!(w, expected_sse, "sse round={round}");
        }
        // The pool actually recycled buffers across those sorts.
        assert!(scratch.pooled_elements() > 0, "scratch never pooled");
    }

    #[test]
    fn forced_kernels_agree_end_to_end() {
        let view = TopoView::new(Arc::new(topo()));
        let placement = Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(6)).unwrap();
        let exec = Executor::new(&view, &placement);
        let mut scratch = SortScratch::new();
        let data = random(130_000, 21);
        let mut expected = data.clone();
        expected.sort_unstable();
        for table in crate::simd::supported() {
            let mut v = data.clone();
            mctop_sort_kernel_on(&exec, &mut v, &view, 0, &mut scratch, table);
            assert_eq!(v, expected, "kernel={}", table.name);
        }
    }

    #[test]
    fn executor_and_transient_paths_agree() {
        let t = topo();
        let view = TopoView::new(Arc::new(t.clone()));
        let placement = Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(8)).unwrap();
        let exec = Executor::new(&view, &placement);
        let data = random(90_000, 11);
        let mut a = data.clone();
        mctop_sort(&mut a, &t, 8, 0);
        let mut b = data.clone();
        mctop_sort_on(&exec, &mut b, &view, 0, &mut SortScratch::new());
        assert_eq!(a, b);
    }
}
