//! A bitonic merge network: the portable stand-in for the SSE merge
//! kernel of `mctop_sort_sse` (Section 7.2).
//!
//! "Using 128-bit instructions, we can create a bitonic merge network
//! that merges 8 elements at a time." This module implements the
//! classic 4+4 bitonic merger over fixed-size arrays of `u32` — the
//! exact data-flow a 128-bit SIMD implementation executes — written so
//! the compiler can keep the values in vector registers. The merging
//! loop consumes whichever input run's head is smaller, four elements
//! at a time, exactly like the SIMD mergesort literature the paper
//! cites (Chhugani et al., Inoue & Taura).

/// Merges two sorted 4-element arrays into a sorted 8-element array
/// (one pass of the bitonic network: reverse + 3 compare-exchange
/// stages).
#[inline(always)]
pub fn bitonic_merge_4x4(a: [u32; 4], b: [u32; 4]) -> [u32; 8] {
    // Stage 0: concatenate a with reversed b -> bitonic sequence.
    let mut v = [a[0], a[1], a[2], a[3], b[3], b[2], b[1], b[0]];
    // Stage 1: compare-exchange with stride 4.
    for i in 0..4 {
        cx(&mut v, i, i + 4);
    }
    // Stage 2: stride 2.
    cx(&mut v, 0, 2);
    cx(&mut v, 1, 3);
    cx(&mut v, 4, 6);
    cx(&mut v, 5, 7);
    // Stage 3: stride 1.
    cx(&mut v, 0, 1);
    cx(&mut v, 2, 3);
    cx(&mut v, 4, 5);
    cx(&mut v, 6, 7);
    v
}

#[inline(always)]
fn cx(v: &mut [u32; 8], i: usize, j: usize) {
    let (lo, hi) = (v[i].min(v[j]), v[i].max(v[j]));
    v[i] = lo;
    v[j] = hi;
}

/// Merges two sorted runs into `out` using the 4-wide bitonic kernel
/// for the bulk and a scalar tail. Semantically identical to
/// [`crate::merge::merge_into`].
pub fn merge_bitonic(a: &[u32], b: &[u32], out: &mut [u32]) {
    assert_eq!(out.len(), a.len() + b.len());
    let mut i = 0usize; // Consumed from a.
    let mut j = 0usize;
    let mut o = 0usize;
    // Register of 4 pending smallest elements.
    if a.len() >= 4 && b.len() >= 4 {
        let mut low: [u32; 4];
        let mut high: [u32; 4] = take4(b, 0);
        low = take4(a, 0);
        i = 4;
        j = 4;
        loop {
            let m = bitonic_merge_4x4(low, high);
            out[o..o + 4].copy_from_slice(&m[..4]);
            o += 4;
            high = [m[4], m[5], m[6], m[7]];
            // Refill from the run whose next head is smaller.
            let next_from_a = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => x <= y,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if next_from_a {
                if i + 4 <= a.len() {
                    low = take4(a, i);
                    i += 4;
                } else {
                    break;
                }
            } else if j + 4 <= b.len() {
                low = take4(b, j);
                j += 4;
            } else {
                break;
            }
        }
        // Flush the pending register against the input tails through
        // the shared scalar epilogue: `high` holds 4 sorted elements
        // merged as a third tiny run, with no scratch allocation. Every
        // kernel width (4-wide scalar/SSE, 8-wide AVX2) funnels its
        // non-multiple-of-width remainder through this same path.
        crate::merge::merge3_into(&high, &a[i..], &b[j..], &mut out[o..]);
        return;
    }
    // Short inputs: scalar.
    let _ = (i, j, o);
    crate::merge::merge_into(a, b, out);
}

#[inline(always)]
fn take4(s: &[u32], at: usize) -> [u32; 4] {
    [s[at], s[at + 1], s[at + 2], s[at + 3]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{
        Rng,
        SeedableRng, //
    };

    #[test]
    fn network_merges_4x4() {
        let out = bitonic_merge_4x4([1, 3, 5, 7], [2, 4, 6, 8]);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
        let out = bitonic_merge_4x4([5, 6, 7, 8], [1, 2, 3, 4]);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
        let out = bitonic_merge_4x4([1, 1, 9, 9], [1, 2, 9, 10]);
        assert_eq!(out, [1, 1, 1, 2, 9, 9, 9, 10]);
    }

    #[test]
    fn merge_bitonic_equals_scalar_merge() {
        let mut rng = SmallRng::seed_from_u64(9);
        for (na, nb) in [
            (0usize, 10usize),
            (3, 3),
            (4, 4),
            (100, 7),
            (1000, 1000),
            (997, 1003),
        ] {
            let mut a: Vec<u32> = (0..na).map(|_| rng.gen_range(0..10_000)).collect();
            let mut b: Vec<u32> = (0..nb).map(|_| rng.gen_range(0..10_000)).collect();
            a.sort_unstable();
            b.sort_unstable();
            let mut expected = vec![0; na + nb];
            crate::merge::merge_into(&a, &b, &mut expected);
            let mut out = vec![0; na + nb];
            merge_bitonic(&a, &b, &mut out);
            assert_eq!(out, expected, "na={na} nb={nb}");
        }
    }

    #[test]
    fn network_output_always_sorted_exhaustive_small() {
        // All 0/1 patterns (the 0-1 principle: a comparison network
        // that sorts all 0/1 inputs sorts everything).
        for ma in 0u32..16 {
            for mb in 0u32..16 {
                let mut a = [0u32; 4];
                let mut b = [0u32; 4];
                for k in 0..4 {
                    a[k] = (ma >> k) & 1;
                    b[k] = (mb >> k) & 1;
                }
                a.sort_unstable();
                b.sort_unstable();
                let out = bitonic_merge_4x4(a, b);
                assert!(
                    out.windows(2).all(|w| w[0] <= w[1]),
                    "a={a:?} b={b:?} out={out:?}"
                );
            }
        }
    }
}
