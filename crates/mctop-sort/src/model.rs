//! The Fig. 9 cost model: predicts the sequential-sort and merging time
//! of `gnu`, `mctop_sort` and `mctop_sort_sse` for 1 GB of integers on
//! each simulated platform.
//!
//! The model charges (per merge pass) the larger of a bandwidth term —
//! bytes moved over the effective bandwidth of the sockets/links the
//! pass uses — and a CPU term (merge kernel cycles per element). The
//! difference between the algorithms is exactly what the paper credits:
//! `gnu`'s random placement mixes cross-socket traffic into every pass,
//! `mctop_sort` keeps early passes socket-local and pairs sockets along
//! the maximum-bandwidth tree, and the SSE kernel cuts the CPU term.

use mcsim::MachineSpec;
use mctop::view::TopoView;
use mctop::Mctop;
use mctop_alloc::AllocPolicy;

use crate::tree::MergeTree;

/// Which algorithm to predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortAlgo {
    /// `__gnu_parallel::sort`-shaped baseline.
    Gnu,
    /// Topology-aware mergesort.
    Mctop,
    /// Topology-aware mergesort with the SIMD merge kernel.
    MctopSse,
}

impl SortAlgo {
    /// Paper label.
    pub fn name(self) -> &'static str {
        match self {
            SortAlgo::Gnu => "gnu",
            SortAlgo::Mctop => "mctop",
            SortAlgo::MctopSse => "mctop_sse",
        }
    }
}

/// Model constants (calibrated so the Ivy column of Fig. 9 lands near
/// the published absolute numbers; every other prediction follows from
/// the machine models).
#[derive(Debug, Clone, Copy)]
pub struct SortModelCfg {
    /// Elements sorted (1 GB of 32-bit integers).
    pub elements: usize,
    /// Quicksort cost, cycles per element per log2-level.
    pub sort_cycles: f64,
    /// Scalar merge kernel, cycles per element (branchy).
    pub scalar_merge_cycles: f64,
    /// SIMD merge kernel, cycles per element.
    pub simd_merge_cycles: f64,
    /// Bytes of memory traffic per element per merge pass
    /// (read both runs + write-allocate the output).
    pub bytes_per_element: f64,
    /// Fraction of peak bandwidth a streaming merge achieves.
    pub bw_efficiency: f64,
}

impl Default for SortModelCfg {
    fn default() -> Self {
        SortModelCfg {
            elements: 268_435_456,
            sort_cycles: 7.0,
            scalar_merge_cycles: 16.0,
            simd_merge_cycles: 5.5,
            bytes_per_element: 12.0,
            bw_efficiency: 0.45,
        }
    }
}

impl SortModelCfg {
    /// Replaces the SIMD cycles-per-element constant with one measured
    /// from the kernels the sort actually runs: the scalar constant
    /// (which calibrates the Ivy column of Fig. 9) is kept, and the
    /// SIMD constant is rescaled by the host-measured
    /// `simd_ns / scalar_ns` ratio of the two kernel tables. The ratio
    /// transfers across modeled platforms (it is a property of the
    /// kernels, not of the clock), so the `mctop_sse` prediction tracks
    /// whatever kernel [`crate::simd::auto`] dispatched — including a
    /// host where no vector unit exists, in which case the ratio is
    /// ~1 and the sse variant correctly predicts no kernel win.
    pub fn calibrate_kernels(
        mut self,
        scalar: &crate::simd::KernelTable,
        simd: &crate::simd::KernelTable,
    ) -> SortModelCfg {
        // Big enough to leave L1/L2, small enough to stay fast.
        const ELEMS: usize = 1 << 20;
        const REPS: usize = 5;
        let scalar_ns = crate::simd::measure_merge_ns(scalar, ELEMS, REPS);
        let simd_ns = crate::simd::measure_merge_ns(simd, ELEMS, REPS);
        if scalar_ns > 0.0 && simd_ns.is_finite() {
            // The SIMD kernel never models slower than scalar: the
            // dispatch contract falls back to scalar when vectors lose.
            self.simd_merge_cycles =
                (self.scalar_merge_cycles * simd_ns / scalar_ns).min(self.scalar_merge_cycles);
        }
        self
    }

    /// [`SortModelCfg::calibrate_kernels`] over the dispatch pair the
    /// sorts use: [`crate::simd::scalar`] vs [`crate::simd::auto`].
    pub fn calibrated() -> SortModelCfg {
        SortModelCfg::default().calibrate_kernels(crate::simd::scalar(), crate::simd::auto())
    }
}

/// Predicted time breakdown, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SortTime {
    /// Phase-one parallel quicksort.
    pub seq_s: f64,
    /// All merge passes.
    pub merge_s: f64,
}

impl SortTime {
    /// Total time.
    pub fn total(&self) -> f64 {
        self.seq_s + self.merge_s
    }
}

/// Predicts one bar of Fig. 9 from a bare topology (builds a throwaway
/// [`TopoView`]; use [`predict_with_view`] when predicting several bars
/// over the same machine).
pub fn predict(
    spec: &MachineSpec,
    topo: &Mctop,
    algo: SortAlgo,
    n_threads: usize,
    cfg: &SortModelCfg,
) -> SortTime {
    let view = TopoView::new(std::sync::Arc::new(topo.clone()));
    predict_with_view(spec, &view, algo, n_threads, cfg)
}

/// Predicts one bar of Fig. 9 over a prebuilt topology view, with the
/// merge buffers on every thread's local node (the paper's placement).
pub fn predict_with_view(
    spec: &MachineSpec,
    topo: &TopoView,
    algo: SortAlgo,
    n_threads: usize,
    cfg: &SortModelCfg,
) -> SortTime {
    predict_alloc(spec, topo, algo, n_threads, cfg, &AllocPolicy::Local)
        .expect("the LOCAL policy always resolves")
}

/// [`predict_with_view`] with the merge buffers routed through an
/// explicit [`AllocPolicy`]: every bandwidth term charges the policy's
/// stripe mix (via `mctop_alloc::model`) instead of assuming
/// local-node buffers. `AllocPolicy::Local` reproduces
/// [`predict_with_view`] bit-exactly; any other policy that cannot be
/// evaluated on this topology (unenriched, bad node set) is an error —
/// never silently priced like `Local`.
pub fn predict_alloc(
    spec: &MachineSpec,
    topo: &TopoView,
    algo: SortAlgo,
    n_threads: usize,
    cfg: &SortModelCfg,
    alloc: &AllocPolicy,
) -> Result<SortTime, mctop_alloc::AllocError> {
    let p = n_threads.max(1) as f64;
    let f_hz = spec.freq_ghz * 1e9;
    let e = cfg.elements as f64;

    // Phase 1: identical for every algorithm (same kernel, and the
    // chunks always fit their threads' sockets).
    let chunk = e / p;
    let seq_s = chunk * chunk.log2().max(1.0) * cfg.sort_cycles / f_hz * (e / (chunk * p));

    let merge_cycles = match algo {
        SortAlgo::MctopSse => {
            // Half the workers run the SIMD kernel with a 3:1 data
            // split (Section 7.2): effective cost is the weighted mean.
            (3.0 * cfg.simd_merge_cycles + cfg.scalar_merge_cycles) / 4.0
        }
        _ => cfg.scalar_merge_cycles,
    };
    let cpu_pass_s = e * merge_cycles / (f_hz * p);

    let sockets_used = topo.num_sockets().min(n_threads).max(1);
    let threads_per_socket = (n_threads as f64 / sockets_used as f64).max(1.0);
    // What each socket can stream against buffers striped per the
    // allocation policy (LOCAL = the socket's local bandwidth, i.e. the
    // legacy ad-hoc node math; other policies mix in remote routes).
    // Precomputed once: topology and policy are fixed for the call.
    // Only LOCAL keeps the legacy fallback for an unmeasured local
    // bandwidth; policy errors propagate instead of pricing as LOCAL.
    let socket_bw: Vec<f64> = (0..topo.num_sockets())
        .map(
            |s| match mctop_alloc::model::socket_policy_bandwidth(topo, s, alloc) {
                Ok(bw) => Ok(bw * 1e9),
                Err(_) if matches!(alloc, AllocPolicy::Local) => Ok(spec.mem.local_bandwidth * 1e9),
                Err(e) => Err(e),
            },
        )
        .collect::<Result<_, _>>()?;
    let local_bw = |s: usize| -> f64 { socket_bw[s] };

    let mut merge_s = 0.0;
    match algo {
        SortAlgo::Gnu => {
            // log2(p) passes; every pass moves all data. Random
            // placement: with probability 1/S the two runs share a
            // socket, otherwise the merge streams over a random link.
            let s = topo.num_sockets() as f64;
            let avg_local: f64 = (0..topo.num_sockets()).map(local_bw).sum::<f64>() / s;
            let links = &topo.links;
            let avg_link: f64 = if links.is_empty() {
                avg_local
            } else {
                links
                    .iter()
                    .map(|l| l.bandwidth.unwrap_or(spec.mem.remote_bandwidth) * 1e9)
                    .sum::<f64>()
                    / links.len() as f64
            };
            let eff = (avg_local / s) + avg_link * (1.0 - 1.0 / s);
            // Merges spread over min(#merges, S) memory channels.
            let mut runs = n_threads.max(2);
            while runs > 1 {
                let merges = runs / 2;
                let channels = (merges.min(sockets_used)) as f64;
                let bw_pass_s = e * cfg.bytes_per_element / (eff * cfg.bw_efficiency * channels);
                merge_s += bw_pass_s.max(cpu_pass_s);
                runs -= merges;
            }
        }
        SortAlgo::Mctop | SortAlgo::MctopSse => {
            // Intra-socket passes: each socket reduces its own chunks at
            // local bandwidth, all sockets in parallel.
            let min_local = (0..topo.num_sockets())
                .map(local_bw)
                .fold(f64::INFINITY, f64::min);
            let mut runs_per_socket = threads_per_socket.round().max(1.0) as usize;
            while runs_per_socket > 1 {
                let bw_pass_s = e * cfg.bytes_per_element
                    / (min_local * cfg.bw_efficiency * sockets_used as f64);
                merge_s += bw_pass_s.max(cpu_pass_s);
                runs_per_socket -= runs_per_socket / 2;
            }
            // Cross-socket tree: per level, parallel steps; each step
            // bounded by its link bandwidth (or the destination's local
            // bandwidth for the amount that is already local).
            let sockets: Vec<usize> = (0..sockets_used).collect();
            if sockets.len() > 1 {
                let tree = MergeTree::build(topo, &sockets, 0);
                let mut run_elems = vec![0.0f64; topo.num_sockets()];
                for &s in &sockets {
                    run_elems[s] = e / sockets.len() as f64;
                }
                for level in &tree.levels {
                    let mut level_s = 0.0f64;
                    for step in level {
                        let data = run_elems[step.src] + run_elems[step.dst];
                        let link = step.bandwidth_mbps as f64 * 1e6;
                        // Only the remote half streams over the link;
                        // the local half reads at local bandwidth.
                        let local = local_bw(step.dst);
                        let bw = 2.0 / (1.0 / (link.max(1.0)) + 1.0 / local);
                        let t = data * cfg.bytes_per_element / (bw * cfg.bw_efficiency);
                        let cpu = data * merge_cycles / f_hz / (2.0 * threads_per_socket);
                        level_s = level_s.max(t.max(cpu));
                        run_elems[step.dst] += run_elems[step.src];
                        run_elems[step.src] = 0.0;
                    }
                    merge_s += level_s;
                }
            }
        }
    }
    Ok(SortTime { seq_s, merge_s })
}

/// One Fig. 9 column: all three algorithms (SSE skipped on SPARC, which
/// has no 128-bit integer SIMD) for one platform and thread count.
pub fn fig9_column(
    spec: &MachineSpec,
    topo: &Mctop,
    n_threads: usize,
    cfg: &SortModelCfg,
) -> Vec<(SortAlgo, SortTime)> {
    let view = TopoView::new(std::sync::Arc::new(topo.clone()));
    let mut algos = vec![SortAlgo::Gnu, SortAlgo::Mctop];
    if spec.name != "sparc" {
        algos.push(SortAlgo::MctopSse);
    }
    algos
        .into_iter()
        .map(|a| (a, predict_with_view(spec, &view, a, n_threads, cfg)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop::enrich::{
        enrich_all,
        SimEnricher, //
    };

    fn enriched(spec: &MachineSpec) -> Mctop {
        let mut p = mctop::backend::SimProber::noiseless(spec);
        let pc = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let mut t = mctop::infer(&mut p, &pc).unwrap();
        let mut e = SimEnricher::new(spec);
        let mut pw = SimEnricher::new(spec);
        enrich_all(&mut t, &mut e, &mut pw).unwrap();
        t
    }

    #[test]
    fn mctop_beats_gnu_on_every_platform() {
        // Fig. 9: "mctop_sort is consistently faster than
        // gnu_parallel::sort", on average 17% with merging 25% faster.
        let cfg = SortModelCfg::default();
        let mut ratios = Vec::new();
        for spec in mcsim::presets::all_paper_platforms() {
            let topo = enriched(&spec);
            for threads in [16usize, spec.total_hwcs()] {
                let gnu = predict(&spec, &topo, SortAlgo::Gnu, threads, &cfg);
                let mc = predict(&spec, &topo, SortAlgo::Mctop, threads, &cfg);
                assert!(
                    mc.total() < gnu.total(),
                    "{} t={threads}: mctop {:.2}s vs gnu {:.2}s",
                    spec.name,
                    mc.total(),
                    gnu.total()
                );
                // Same sequential part (paper: identical first phase).
                assert!((mc.seq_s - gnu.seq_s).abs() < 1e-9);
                ratios.push(gnu.total() / mc.total());
            }
        }
        let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(avg > 1.08 && avg < 1.45, "average speedup {avg}");
    }

    #[test]
    fn sse_variant_helps_most_where_cpu_bound() {
        let cfg = SortModelCfg::default();
        for spec in mcsim::presets::all_paper_platforms() {
            if spec.name == "sparc" {
                continue;
            }
            let topo = enriched(&spec);
            let mc = predict(&spec, &topo, SortAlgo::Mctop, 16, &cfg);
            let sse = predict(&spec, &topo, SortAlgo::MctopSse, 16, &cfg);
            assert!(sse.total() <= mc.total() + 1e-9, "{}", spec.name);
        }
    }

    #[test]
    fn sparc_column_has_no_sse() {
        let spec = mcsim::presets::sparc();
        let topo = enriched(&spec);
        let col = fig9_column(&spec, &topo, 16, &SortModelCfg::default());
        assert_eq!(col.len(), 2);
        let ivy = mcsim::presets::ivy();
        let topo_i = enriched(&ivy);
        assert_eq!(
            fig9_column(&ivy, &topo_i, 16, &SortModelCfg::default()).len(),
            3
        );
    }

    #[test]
    fn full_machine_faster_than_16_threads() {
        let cfg = SortModelCfg::default();
        for spec in [mcsim::presets::westmere(), mcsim::presets::sparc()] {
            let topo = enriched(&spec);
            let t16 = predict(&spec, &topo, SortAlgo::Mctop, 16, &cfg);
            let tfull = predict(&spec, &topo, SortAlgo::Mctop, spec.total_hwcs(), &cfg);
            assert!(tfull.total() < t16.total(), "{}", spec.name);
        }
    }

    #[test]
    fn alloc_policy_routes_merge_bandwidth() {
        // LOCAL reproduces the default model bit-exactly; INTERLEAVE
        // mixes remote routes into every merge stream, so merging can
        // only get slower, while the CPU-bound first phase is unmoved.
        let cfg = SortModelCfg::default();
        for spec in [mcsim::presets::ivy(), mcsim::presets::westmere()] {
            let topo = enriched(&spec);
            let view = TopoView::build(&topo).unwrap();
            let base = predict_with_view(&spec, &view, SortAlgo::Mctop, 16, &cfg);
            let local = predict_alloc(&spec, &view, SortAlgo::Mctop, 16, &cfg, &AllocPolicy::Local)
                .unwrap();
            assert_eq!(base, local, "{}", spec.name);
            let inter = predict_alloc(
                &spec,
                &view,
                SortAlgo::Mctop,
                16,
                &cfg,
                &AllocPolicy::Interleave,
            )
            .unwrap();
            assert!((inter.seq_s - local.seq_s).abs() < 1e-12, "{}", spec.name);
            assert!(
                inter.merge_s > local.merge_s,
                "{}: interleave {} vs local {}",
                spec.name,
                inter.merge_s,
                local.merge_s
            );
        }
        // An unevaluable policy is an error, never priced like LOCAL.
        let spec = mcsim::presets::ivy();
        let topo = enriched(&spec);
        let view = TopoView::build(&topo).unwrap();
        let bad = predict_alloc(
            &spec,
            &view,
            SortAlgo::Mctop,
            16,
            &cfg,
            &AllocPolicy::OnNodes(vec![99]),
        );
        assert!(bad.is_err());
    }

    #[test]
    fn calibrated_cfg_tracks_measured_kernels() {
        let cfg = SortModelCfg::calibrated();
        assert!(cfg.simd_merge_cycles > 0.0 && cfg.simd_merge_cycles.is_finite());
        // The dispatch contract never models SIMD slower than scalar.
        assert!(cfg.simd_merge_cycles <= cfg.scalar_merge_cycles);
        // Scalar-side constants are untouched by calibration.
        let default = SortModelCfg::default();
        assert_eq!(cfg.scalar_merge_cycles, default.scalar_merge_cycles);
        assert_eq!(cfg.sort_cycles, default.sort_cycles);
        // The calibrated sse prediction stays ordered on a real column.
        let spec = mcsim::presets::ivy();
        let topo = enriched(&spec);
        let mc = predict(&spec, &topo, SortAlgo::Mctop, 16, &cfg);
        let sse = predict(&spec, &topo, SortAlgo::MctopSse, 16, &cfg);
        assert!(sse.total() <= mc.total() + 1e-9);
    }

    #[test]
    fn ivy_absolute_times_near_paper() {
        // Fig. 9, Ivy, 16 threads: gnu 2.45 s, mctop 2.02 s,
        // mctop_sse 1.84 s. The model is calibrated on this column;
        // require every algorithm within ~35%.
        let spec = mcsim::presets::ivy();
        let topo = enriched(&spec);
        let cfg = SortModelCfg::default();
        for (algo, paper) in [
            (SortAlgo::Gnu, 2.45),
            (SortAlgo::Mctop, 2.02),
            (SortAlgo::MctopSse, 1.84),
        ] {
            let t = predict(&spec, &topo, algo, 16, &cfg).total();
            let err = (t - paper).abs() / paper;
            assert!(err < 0.35, "{}: {t:.2}s vs paper {paper}s", algo.name());
        }
    }
}
