//! Runtime-dispatched SIMD merge kernels: the real SSE/AVX bitonic
//! merge networks behind `mctop_sort_sse` (Section 7.2).
//!
//! The paper's headline application win is a mergesort whose merge
//! phases run 128-bit bitonic merge networks. [`crate::bitonic`] keeps
//! the portable scalar network (the mandatory fallback); this module
//! adds the vector implementations — a 4-wide SSE4.1 network and an
//! 8-wide AVX2 network over `core::arch` intrinsics — and the runtime
//! dispatch that picks the widest network the host supports.
//!
//! # Dispatch contract
//!
//! A sort resolves its kernel **once**, through a [`KernelTable`]:
//! [`auto`] consults `is_x86_feature_detected!` exactly once per
//! process (cached in a `OnceLock`) and returns the widest supported
//! kernel; [`scalar`] always returns the portable network. Per-merge
//! calls then go through a plain function pointer — no per-element or
//! per-job feature checks. On non-x86 hosts, or when the crate is
//! built with `--no-default-features` (dropping the `simd` feature),
//! [`auto`] degrades to [`scalar`] and everything stays pure safe
//! Rust.
//!
//! # Byte-identity guarantee
//!
//! Every kernel merges sorted `u32` runs by value, and the sorted
//! union of two value sequences is unique — so every kernel's output
//! is byte-identical to [`crate::merge::merge_into`] by construction.
//! `tests/simd_kernels.rs` enforces this under proptest for every
//! kernel the host can run, including empty sides, duplicate-heavy
//! runs and non-multiple-of-width tails (which all kernels route
//! through the shared scalar epilogue
//! [`crate::merge::merge3_into`]).

use std::sync::OnceLock;

use crate::bitonic::merge_bitonic;

/// A merge kernel entry point: merges two sorted runs into `out`
/// (which must have the exact combined length).
pub type MergeFn = fn(&[u32], &[u32], &mut [u32]);

/// One dispatchable merge kernel.
#[derive(Debug, Clone, Copy)]
pub struct KernelTable {
    /// Kernel name, as reported in benches (`scalar`, `sse4.1`,
    /// `avx2`).
    pub name: &'static str,
    /// Network width in `u32` lanes per iteration.
    pub width: usize,
    /// The merge entry point.
    pub merge: MergeFn,
}

/// The portable scalar bitonic network ([`crate::bitonic`]): the
/// mandatory fallback every build ships.
pub const SCALAR: KernelTable = KernelTable {
    name: "scalar",
    width: 4,
    merge: merge_bitonic,
};

/// The scalar kernel table (forced-scalar dispatch).
pub fn scalar() -> &'static KernelTable {
    &SCALAR
}

/// The widest merge kernel this host supports, detected once per
/// process. Scalar when the `simd` feature is off or the host is not
/// x86-64.
///
/// Whatever kernel detection picks, its output is byte-identical to
/// the scalar merge:
///
/// ```
/// use mctop_sort::simd;
///
/// let table = simd::auto();
/// assert!(table.width >= 4);
///
/// let a = vec![1u32, 3, 5, 7, 9, 11, 13, 15];
/// let b = vec![2u32, 4, 6, 8, 10, 12, 14, 16];
/// let mut out = vec![0u32; a.len() + b.len()];
/// (table.merge)(&a, &b, &mut out);
/// assert_eq!(out, (1..=16).collect::<Vec<u32>>());
/// ```
pub fn auto() -> &'static KernelTable {
    static AUTO: OnceLock<&'static KernelTable> = OnceLock::new();
    AUTO.get_or_init(detect)
}

/// Every kernel runnable on this host, widest first (for tests and
/// benches that compare all of them). Always ends with [`SCALAR`].
pub fn supported() -> Vec<&'static KernelTable> {
    let mut tables = detected_vector_tables();
    tables.push(&SCALAR);
    tables
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn detected_vector_tables() -> Vec<&'static KernelTable> {
    let mut tables: Vec<&'static KernelTable> = Vec::new();
    if std::arch::is_x86_feature_detected!("avx2") {
        tables.push(&x86::AVX2);
    }
    if std::arch::is_x86_feature_detected!("sse4.1") {
        tables.push(&x86::SSE41);
    }
    tables
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn detected_vector_tables() -> Vec<&'static KernelTable> {
    Vec::new()
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn detect() -> &'static KernelTable {
    if std::arch::is_x86_feature_detected!("avx2") {
        &x86::AVX2
    } else if std::arch::is_x86_feature_detected!("sse4.1") {
        &x86::SSE41
    } else {
        &SCALAR
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn detect() -> &'static KernelTable {
    &SCALAR
}

/// Measures one kernel on this host: nanoseconds per element merging
/// two sorted `elements / 2`-sized runs, best of `reps` passes (the
/// calibration probe behind
/// [`crate::model::SortModelCfg::calibrate_kernels`] and the
/// throughput bench's merge-phase rows). Deterministic inputs — a
/// fixed LCG stream — so repeated calls measure the same workload.
pub fn measure_merge_ns(table: &KernelTable, elements: usize, reps: usize) -> f64 {
    let half = (elements / 2).max(1);
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut run = |n: usize| -> Vec<u32> {
        let mut v: Vec<u32> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u32
            })
            .collect();
        v.sort_unstable();
        v
    };
    let a = run(half);
    let b = run(half);
    let mut out = vec![0u32; a.len() + b.len()];
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = std::time::Instant::now();
        (table.merge)(&a, &b, &mut out);
        let ns = start.elapsed().as_secs_f64() * 1e9 / out.len() as f64;
        best = best.min(ns);
    }
    std::hint::black_box(&out);
    best
}

/// The x86-64 vector networks. Every `unsafe` here is the raw
/// intrinsic layer; the public surface stays safe because the tables
/// are only reachable after `is_x86_feature_detected!` succeeded.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use core::arch::x86_64::*;

    use super::KernelTable;
    use crate::merge::{
        merge3_into,
        merge_into, //
    };

    /// 4-wide SSE4.1 bitonic merge network.
    pub const SSE41: KernelTable = KernelTable {
        name: "sse4.1",
        width: 4,
        merge: merge_sse41,
    };

    /// 8-wide AVX2 bitonic merge network.
    pub const AVX2: KernelTable = KernelTable {
        name: "avx2",
        width: 8,
        merge: merge_avx2,
    };

    fn merge_sse41(a: &[u32], b: &[u32], out: &mut [u32]) {
        assert_eq!(out.len(), a.len() + b.len());
        debug_assert!(std::arch::is_x86_feature_detected!("sse4.1"));
        if a.len() < 4 || b.len() < 4 {
            return merge_into(a, b, out);
        }
        // Safety: gated on sse4.1 detection by the dispatch contract.
        unsafe { merge_sse41_inner(a, b, out) }
    }

    fn merge_avx2(a: &[u32], b: &[u32], out: &mut [u32]) {
        assert_eq!(out.len(), a.len() + b.len());
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        if a.len() < 8 || b.len() < 8 {
            return merge_into(a, b, out);
        }
        // Safety: gated on avx2 detection by the dispatch contract.
        unsafe { merge_avx2_inner(a, b, out) }
    }

    /// Sorts a bitonic 4-vector (3 compare-exchange stages).
    #[inline(always)]
    unsafe fn clean4(v: __m128i) -> __m128i {
        // Stride 2: cx(0,2), cx(1,3).
        let w = _mm_shuffle_epi32(v, 0b01_00_11_10);
        let v = _mm_blend_epi16(_mm_min_epu32(v, w), _mm_max_epu32(v, w), 0b1111_0000);
        // Stride 1: cx(0,1), cx(2,3).
        let w = _mm_shuffle_epi32(v, 0b10_11_00_01);
        _mm_blend_epi16(_mm_min_epu32(v, w), _mm_max_epu32(v, w), 0b1100_1100)
    }

    /// Merges two sorted 4-vectors: returns (low half, high half).
    #[inline(always)]
    unsafe fn bitonic_4x4(a: __m128i, b: __m128i) -> (__m128i, __m128i) {
        // Concatenate a with reversed b -> bitonic; the stride-4 stage
        // splits into a low and a high bitonic half.
        let rb = _mm_shuffle_epi32(b, 0b00_01_10_11);
        let lo = _mm_min_epu32(a, rb);
        let hi = _mm_max_epu32(a, rb);
        (clean4(lo), clean4(hi))
    }

    #[target_feature(enable = "sse4.1")]
    unsafe fn merge_sse41_inner(a: &[u32], b: &[u32], out: &mut [u32]) {
        let load = |s: &[u32], at: usize| -> __m128i {
            _mm_loadu_si128(s.as_ptr().add(at) as *const __m128i)
        };
        let mut i = 4usize;
        let mut j = 4usize;
        let mut o = 0usize;
        let mut low = load(a, 0);
        let mut high = load(b, 0);
        loop {
            let (lo, hi) = bitonic_4x4(low, high);
            _mm_storeu_si128(out.as_mut_ptr().add(o) as *mut __m128i, lo);
            o += 4;
            high = hi;
            // Refill from the run whose next head is smaller (the
            // exact decision sequence of the scalar network).
            let next_from_a = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => x <= y,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if next_from_a {
                if i + 4 <= a.len() {
                    low = load(a, i);
                    i += 4;
                } else {
                    break;
                }
            } else if j + 4 <= b.len() {
                low = load(b, j);
                j += 4;
            } else {
                break;
            }
        }
        let mut pending = [0u32; 4];
        _mm_storeu_si128(pending.as_mut_ptr() as *mut __m128i, high);
        merge3_into(&pending, &a[i..], &b[j..], &mut out[o..]);
    }

    /// Sorts a bitonic 8-vector (4 compare-exchange stages).
    #[inline(always)]
    unsafe fn clean8(v: __m256i) -> __m256i {
        // Stride 4: swap 128-bit halves.
        let w = _mm256_permute2x128_si256(v, v, 0x01);
        let v = _mm256_blend_epi32(_mm256_min_epu32(v, w), _mm256_max_epu32(v, w), 0b1111_0000);
        // Stride 2.
        let w = _mm256_shuffle_epi32(v, 0b01_00_11_10);
        let v = _mm256_blend_epi32(_mm256_min_epu32(v, w), _mm256_max_epu32(v, w), 0b1100_1100);
        // Stride 1.
        let w = _mm256_shuffle_epi32(v, 0b10_11_00_01);
        _mm256_blend_epi32(_mm256_min_epu32(v, w), _mm256_max_epu32(v, w), 0b1010_1010)
    }

    /// Merges two sorted 8-vectors: returns (low half, high half).
    #[inline(always)]
    unsafe fn bitonic_8x8(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
        let rb = _mm256_permutevar8x32_epi32(b, _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0));
        let lo = _mm256_min_epu32(a, rb);
        let hi = _mm256_max_epu32(a, rb);
        (clean8(lo), clean8(hi))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn merge_avx2_inner(a: &[u32], b: &[u32], out: &mut [u32]) {
        let load = |s: &[u32], at: usize| -> __m256i {
            _mm256_loadu_si256(s.as_ptr().add(at) as *const __m256i)
        };
        let mut i = 8usize;
        let mut j = 8usize;
        let mut o = 0usize;
        let mut low = load(a, 0);
        let mut high = load(b, 0);
        loop {
            let (lo, hi) = bitonic_8x8(low, high);
            _mm256_storeu_si256(out.as_mut_ptr().add(o) as *mut __m256i, lo);
            o += 8;
            high = hi;
            let next_from_a = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => x <= y,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if next_from_a {
                if i + 8 <= a.len() {
                    low = load(a, i);
                    i += 8;
                } else {
                    break;
                }
            } else if j + 8 <= b.len() {
                low = load(b, j);
                j += 8;
            } else {
                break;
            }
        }
        let mut pending = [0u32; 8];
        _mm256_storeu_si256(pending.as_mut_ptr() as *mut __m256i, high);
        merge3_into(&pending, &a[i..], &b[j..], &mut out[o..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{
        Rng,
        SeedableRng, //
    };

    fn sorted(n: usize, cap: u32, seed: u64) -> Vec<u32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut v: Vec<u32> = (0..n).map(|_| rng.gen_range(0..cap.max(1))).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn every_supported_kernel_matches_scalar_merge() {
        for table in supported() {
            for (na, nb, cap) in [
                (0usize, 0usize, 10u32),
                (0, 17, 10),
                (3, 3, 5),
                (4, 4, 1_000),
                (8, 8, 1_000),
                (9, 23, 4),
                (100, 7, 1_000_000),
                (1000, 1000, 50),
                (997, 1003, 1_000_000),
                (4096, 4096, 1_000_000),
            ] {
                let a = sorted(na, cap, na as u64 ^ 1);
                let b = sorted(nb, cap, nb as u64 ^ 2);
                let mut expected = vec![0u32; na + nb];
                crate::merge::merge_into(&a, &b, &mut expected);
                let mut got = vec![0u32; na + nb];
                (table.merge)(&a, &b, &mut got);
                assert_eq!(got, expected, "kernel={} na={na} nb={nb}", table.name);
            }
        }
    }

    #[test]
    fn auto_is_among_supported_and_cached() {
        let auto1 = auto();
        let auto2 = auto();
        assert!(std::ptr::eq(auto1, auto2), "auto() must cache");
        assert!(supported().iter().any(|t| t.name == auto1.name));
        // The fallback is always available.
        assert_eq!(scalar().name, "scalar");
    }

    #[test]
    fn measure_merge_ns_is_positive_and_finite() {
        for table in [scalar(), auto()] {
            let ns = measure_merge_ns(table, 10_000, 3);
            assert!(ns.is_finite() && ns > 0.0, "{}: {ns}", table.name);
        }
    }
}
