//! # mctop-sort — topology-aware parallel mergesort
//!
//! Reproduction of `mctop_sort` (Section 7.2 of the MCTOP paper). The
//! algorithm takes the same first step as `__gnu_parallel::sort`
//! (parallel quicksort of per-thread chunks) but merges the sorted runs
//! along a *cross-socket reduction tree* built from the topology
//! (Section 5): within sockets, all threads of a socket cooperate on the
//! same merges; across sockets, a binary tree pairs sockets to maximize
//! the bandwidth to data, rooted at the socket that needs the final
//! result.
//!
//! Modules:
//! - [`seq`]: the sequential quicksort used for the first phase;
//! - [`merge`]: scalar merging plus merge-path splitting for
//!   cooperative (multi-thread) merges;
//! - [`bitonic`]: the portable 4-wide bitonic merge network — the
//!   mandatory scalar fallback of `mctop_sort_sse` (written over
//!   fixed-size arrays so the compiler can vectorize it);
//! - [`simd`]: runtime-feature-detected SSE4.1/AVX2 bitonic merge
//!   networks plus the kernel table that dispatches one merge kernel
//!   per sort (byte-identical output to the scalar merge; scalar-only
//!   under `--no-default-features`);
//! - [`tree`]: the bandwidth-maximizing cross-socket merge tree;
//! - [`parallel`]: `mctop_sort`, `mctop_sort_sse`, and the
//!   topology-agnostic `gnu_parallel`-like baseline — all real,
//!   multi-threaded, runnable on the host;
//! - [`model`]: the Fig. 9 cost model that regenerates the paper's
//!   per-platform time breakdowns over the simulated machines.

#![deny(missing_docs)]

pub mod bitonic;
pub mod merge;
pub mod model;
pub mod parallel;
pub mod seq;
pub mod simd;
pub mod tree;

pub use parallel::{
    baseline_sort,
    mctop_sort,
    mctop_sort_kernel_on,
    mctop_sort_on,
    mctop_sort_sse,
    mctop_sort_sse_on,
    mctop_sort_sse_with_view,
    mctop_sort_with_view,
    SortScratch, //
};
