//! Merging: scalar two-way merge, the merge-path split that lets `k`
//! threads merge one pair of runs cooperatively, and the cooperative
//! parallel merge itself.

/// Merges two sorted slices into `out` (must have the exact combined
/// length).
pub fn merge_into<T: Ord + Copy>(a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(out.len(), a.len() + b.len(), "output size mismatch");
    let (mut i, mut j) = (0usize, 0usize);
    for slot in out.iter_mut() {
        let take_a = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => x <= y,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("output exactly fits"),
        };
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Merges three sorted slices into `out` (must have the exact combined
/// length) — the shared scalar epilogue of every bitonic merge kernel:
/// `p` is the pending high register flushed out of the network, `a` and
/// `b` are the unconsumed input tails. No scratch allocation: one
/// three-way head comparison per output element.
pub fn merge3_into<T: Ord + Copy>(p: &[T], a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(
        out.len(),
        p.len() + a.len() + b.len(),
        "output size mismatch"
    );
    let (mut ip, mut ia, mut ib) = (0usize, 0usize, 0usize);
    for slot in out.iter_mut() {
        // Smallest head wins; ties prefer p, then a (for plain values
        // the output sequence is the same either way).
        let min_ab = match (a.get(ia), b.get(ib)) {
            (Some(x), Some(y)) => Some(if x <= y { x } else { y }),
            (Some(x), None) => Some(x),
            (None, Some(y)) => Some(y),
            (None, None) => None,
        };
        match (p.get(ip), min_ab) {
            (Some(x), None) => {
                *slot = *x;
                ip += 1;
            }
            (Some(x), Some(m)) if x <= m => {
                *slot = *x;
                ip += 1;
            }
            (_, Some(_)) => match (a.get(ia), b.get(ib)) {
                (Some(x), Some(y)) if x <= y => {
                    *slot = *x;
                    ia += 1;
                }
                (Some(x), None) => {
                    *slot = *x;
                    ia += 1;
                }
                (_, Some(y)) => {
                    *slot = *y;
                    ib += 1;
                }
                (_, None) => unreachable!("min_ab was Some"),
            },
            (None, None) => unreachable!("output exactly fits"),
        }
    }
}

/// Co-ranks for the merge path: returns `(i, j)` with `i + j == d` such
/// that merging `a[..i]` and `b[..j]` produces exactly the first `d`
/// output elements.
pub fn co_rank<T: Ord + Copy>(d: usize, a: &[T], b: &[T]) -> (usize, usize) {
    assert!(d <= a.len() + b.len());
    let mut lo = d.saturating_sub(b.len());
    let mut hi = d.min(a.len());
    loop {
        let i = lo + (hi - lo) / 2;
        let j = d - i;
        if i < a.len() && j > 0 && b[j - 1] > a[i] {
            // Too few elements taken from a.
            lo = i + 1;
        } else if i > 0 && j < b.len() && a[i - 1] > b[j] {
            // Too many elements taken from a.
            hi = i - 1;
        } else {
            return (i, j);
        }
        debug_assert!(lo <= hi, "co_rank invariant violated");
    }
}

/// Splits the merge of `a` and `b` into `k` balanced independent
/// segments `(a_range, b_range, out_offset)`.
pub fn split_merge<T: Ord + Copy>(
    a: &[T],
    b: &[T],
    k: usize,
) -> Vec<(std::ops::Range<usize>, std::ops::Range<usize>, usize)> {
    assert!(k >= 1);
    let total = a.len() + b.len();
    let mut cuts = Vec::with_capacity(k + 1);
    for s in 0..=k {
        let d = total * s / k;
        cuts.push((d, co_rank(d, a, b)));
    }
    cuts.windows(2)
        .map(|w| {
            let (d0, (i0, j0)) = w[0];
            let (_, (i1, j1)) = w[1];
            (i0..i1, j0..j1, d0)
        })
        .collect()
}

/// One independent slice of a cooperative merge: two sorted inputs
/// and the disjoint output window they merge into.
pub type MergeJob<'a, T> = (&'a [T], &'a [T], &'a mut [T]);

/// Splits the merge of `a` and `b` into at most `k` independent jobs
/// over disjoint windows of `out`. Small merges (or `k <= 1`) come
/// back as a single job. The split depends only on the data and `k` —
/// never on who executes the jobs — so any schedule produces the same
/// bytes.
pub fn merge_jobs<'a, T: Ord + Copy>(
    a: &'a [T],
    b: &'a [T],
    out: &'a mut [T],
    k: usize,
) -> Vec<MergeJob<'a, T>> {
    assert_eq!(out.len(), a.len() + b.len(), "output size mismatch");
    if k <= 1 || out.len() < 4096 {
        return vec![(a, b, out)];
    }
    let segments = split_merge(a, b, k);
    // Carve `out` into disjoint mutable windows matching the segments.
    let mut jobs = Vec::with_capacity(segments.len());
    let mut rest = out;
    let mut taken = 0usize;
    for (ra, rb, off) in segments {
        let len = (ra.end - ra.start) + (rb.end - rb.start);
        let (window, tail) = rest.split_at_mut(off - taken + len);
        let window = &mut window[off - taken..];
        taken = off + len;
        rest = tail;
        jobs.push((&a[ra], &b[rb], window));
    }
    jobs
}

/// Merges two sorted runs into `out` using `k` real threads, each
/// merging an independent merge-path segment. (The topology-agnostic
/// baseline path; `mctop_sort` submits [`merge_jobs`] to the
/// persistent executor instead.)
pub fn parallel_merge<T: Ord + Copy + Send + Sync>(a: &[T], b: &[T], out: &mut [T], k: usize) {
    let mut jobs = merge_jobs(a, b, out, k);
    if jobs.len() == 1 {
        let (sa, sb, window) = jobs.pop().expect("one job");
        merge_into(sa, sb, window);
        return;
    }
    std::thread::scope(|scope| {
        for (sa, sb, window) in jobs {
            scope.spawn(move || merge_into(sa, sb, window));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{
        Rng,
        SeedableRng, //
    };

    fn sorted(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut v: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn merge_into_basic() {
        let a = vec![1, 3, 5];
        let b = vec![2, 4, 6, 7];
        let mut out = vec![0; 7];
        merge_into(&a, &b, &mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn merge_handles_empty_sides() {
        let a: Vec<u32> = vec![];
        let b = vec![1, 2];
        let mut out = vec![0; 2];
        merge_into(&a, &b, &mut out);
        assert_eq!(out, vec![1, 2]);
        let mut out2 = vec![0; 2];
        merge_into(&b, &a, &mut out2);
        assert_eq!(out2, vec![1, 2]);
    }

    #[test]
    fn co_rank_prefixes_are_consistent() {
        let a = sorted(500, 1);
        let b = sorted(700, 2);
        for d in [0usize, 1, 250, 600, 1199, 1200] {
            let (i, j) = co_rank(d, &a, &b);
            assert_eq!(i + j, d);
            // Every element in the prefix <= every element after it.
            let prefix_max = a[..i].iter().chain(b[..j].iter()).max().copied();
            let suffix_min = a[i..].iter().chain(b[j..].iter()).min().copied();
            if let (Some(pm), Some(sm)) = (prefix_max, suffix_min) {
                assert!(pm <= sm, "d={d}: prefix max {pm} > suffix min {sm}");
            }
        }
    }

    #[test]
    fn split_merge_segments_cover_everything() {
        let a = sorted(1000, 3);
        let b = sorted(900, 4);
        let segs = split_merge(&a, &b, 7);
        assert_eq!(segs.len(), 7);
        assert_eq!(segs[0].0.start, 0);
        assert_eq!(segs[0].1.start, 0);
        assert_eq!(segs.last().unwrap().0.end, a.len());
        assert_eq!(segs.last().unwrap().1.end, b.len());
        for w in segs.windows(2) {
            assert_eq!(w[0].0.end, w[1].0.start);
            assert_eq!(w[0].1.end, w[1].1.start);
        }
    }

    #[test]
    fn parallel_merge_matches_sequential() {
        let a = sorted(30_000, 5);
        let b = sorted(27_001, 6);
        let mut expected = vec![0; a.len() + b.len()];
        merge_into(&a, &b, &mut expected);
        for k in [1usize, 2, 3, 4] {
            let mut out = vec![0; a.len() + b.len()];
            parallel_merge(&a, &b, &mut out, k);
            assert_eq!(out, expected, "k={k}");
        }
    }

    #[test]
    fn parallel_merge_duplicate_heavy() {
        let mut a = vec![5u32; 10_000];
        a.extend(vec![9u32; 10_000]);
        let b = vec![5u32; 15_000];
        let mut out = vec![0; 35_000];
        parallel_merge(&a, &b, &mut out, 4);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }
}
