//! Sequential quicksort: the per-chunk sort of phase one (both
//! `mctop_sort` and the baseline use the same sequential kernel, as in
//! the paper where "the sequential part is the same on both
//! algorithms").

/// Insertion-sort cutoff.
const CUTOFF: usize = 24;

/// Sorts a slice in place with median-of-three quicksort.
pub fn quicksort<T: Ord + Copy>(a: &mut [T]) {
    if a.len() <= CUTOFF {
        insertion_sort(a);
        return;
    }
    let p = partition(a);
    let (lo, hi) = a.split_at_mut(p);
    quicksort(lo);
    quicksort(&mut hi[1..]);
}

fn insertion_sort<T: Ord + Copy>(a: &mut [T]) {
    for i in 1..a.len() {
        let v = a[i];
        let mut j = i;
        while j > 0 && a[j - 1] > v {
            a[j] = a[j - 1];
            j -= 1;
        }
        a[j] = v;
    }
}

/// Median-of-three partition; returns the pivot's final index.
fn partition<T: Ord + Copy>(a: &mut [T]) -> usize {
    let n = a.len();
    let mid = n / 2;
    // Order a[0], a[mid], a[n-1]; use the median as pivot at n-1.
    if a[mid] < a[0] {
        a.swap(mid, 0);
    }
    if a[n - 1] < a[0] {
        a.swap(n - 1, 0);
    }
    if a[n - 1] < a[mid] {
        a.swap(n - 1, mid);
    }
    a.swap(mid, n - 1);
    let pivot = a[n - 1];
    let mut store = 0;
    for i in 0..n - 1 {
        if a[i] < pivot {
            a.swap(i, store);
            store += 1;
        }
    }
    a.swap(store, n - 1);
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{
        Rng,
        SeedableRng, //
    };

    #[test]
    fn sorts_random_input() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..10_000).map(|_| rng.gen()).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        quicksort(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn sorts_adversarial_inputs() {
        // Already sorted, reverse sorted, all equal, tiny.
        let mut a: Vec<u32> = (0..2000).collect();
        quicksort(&mut a);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));

        let mut b: Vec<u32> = (0..2000).rev().collect();
        quicksort(&mut b);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));

        let mut c = vec![7u32; 1000];
        quicksort(&mut c);
        assert!(c.iter().all(|&x| x == 7));

        let mut d: Vec<u32> = vec![];
        quicksort(&mut d);
        let mut e = vec![3u32];
        quicksort(&mut e);
        assert_eq!(e, vec![3]);
    }

    #[test]
    fn sorts_duplicates_heavy() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut v: Vec<u8> = (0..50_000).map(|_| rng.gen_range(0..4)).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        quicksort(&mut v);
        assert_eq!(v, expected);
    }
}
