//! Cross-socket reduction trees (Section 5, "Topology-Aware Reduction
//! Trees"): a binary merge tree over sockets such that (i) the final
//! destination socket is the one that requires the final data, and
//! (ii) at each level, sockets are paired to maximize the bandwidth to
//! the data being merged.

use mctop::view::TopoView;

/// One merge step: the runs held by `src` and `dst` are merged, the
/// result lives on `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeStep {
    /// Socket whose run is consumed.
    pub src: usize,
    /// Socket that holds the merged result.
    pub dst: usize,
    /// Effective bandwidth of this step, GB/s (the link bandwidth, or
    /// the destination's local bandwidth for self-merges).
    pub bandwidth_mbps: u64,
}

/// A level-ordered binary reduction tree over sockets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeTree {
    /// Levels from leaves to root; steps within a level run in
    /// parallel.
    pub levels: Vec<Vec<MergeStep>>,
    /// The destination socket (root).
    pub dest: usize,
}

impl MergeTree {
    /// Builds the tree for the given sockets, rooted at `dest`.
    ///
    /// Greedy maximum-bandwidth matching per level: repeatedly pick the
    /// unmatched socket pair with the highest connecting bandwidth; the
    /// member closer (higher bandwidth) to `dest` survives; `dest`
    /// itself always survives. Odd sockets get a bye.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is not among `sockets` or `sockets` is empty.
    pub fn build(view: &TopoView, sockets: &[usize], dest: usize) -> MergeTree {
        assert!(!sockets.is_empty(), "no sockets to merge");
        assert!(sockets.contains(&dest), "destination must participate");
        let bw = |a: usize, b: usize| -> f64 {
            if a == b {
                return view.local_bandwidth(a).unwrap_or(1.0);
            }
            view.cross_bandwidth(a, b).unwrap_or_else(|| {
                // Unenriched topologies: prefer low latency.
                let lat = view.socket_latency(a, b).max(1);
                1e6 / lat as f64
            })
        };
        let mut alive: Vec<usize> = sockets.to_vec();
        let mut levels = Vec::new();
        while alive.len() > 1 {
            let mut level = Vec::new();
            let mut unmatched = alive.clone();
            let mut next = Vec::new();
            while unmatched.len() > 1 {
                // Highest-bandwidth pair among the unmatched.
                let mut best: Option<(f64, usize, usize)> = None;
                for (x, &a) in unmatched.iter().enumerate() {
                    for &b in unmatched.iter().skip(x + 1) {
                        let w = bw(a, b);
                        if best.is_none_or(|(bw0, _, _)| w > bw0) {
                            best = Some((w, a, b));
                        }
                    }
                }
                let (w, a, b) = best.expect("at least one pair");
                unmatched.retain(|&s| s != a && s != b);
                // The survivor: dest if involved, else the member with
                // the better connection toward dest.
                let dst = if a == dest || b == dest {
                    dest
                } else if bw(a, dest) >= bw(b, dest) {
                    a
                } else {
                    b
                };
                let src = if dst == a { b } else { a };
                level.push(MergeStep {
                    src,
                    dst,
                    bandwidth_mbps: (w * 1000.0) as u64,
                });
                next.push(dst);
            }
            // Bye for an odd socket.
            next.extend(unmatched);
            levels.push(level);
            alive = next;
        }
        debug_assert_eq!(alive, vec![dest]);
        MergeTree { levels, dest }
    }

    /// Number of merge levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop::enrich::{
        enrich_all,
        SimEnricher, //
    };

    fn topo(spec: &mcsim::MachineSpec) -> TopoView {
        let mut p = mctop::backend::SimProber::noiseless(spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let mut t = mctop::infer(&mut p, &cfg).unwrap();
        let mut e = SimEnricher::new(spec);
        let mut pw = SimEnricher::new(spec);
        enrich_all(&mut t, &mut e, &mut pw).unwrap();
        TopoView::build(&t).unwrap()
    }

    #[test]
    fn two_sockets_single_step() {
        let t = topo(&mcsim::presets::ivy());
        let tree = MergeTree::build(&t, &[0, 1], 0);
        assert_eq!(tree.depth(), 1);
        assert_eq!(
            tree.levels[0],
            vec![MergeStep {
                src: 1,
                dst: 0,
                bandwidth_mbps: tree.levels[0][0].bandwidth_mbps
            }]
        );
        assert_eq!(tree.dest, 0);
    }

    #[test]
    fn opteron_pairs_mcm_partners_first() {
        // MCM-internal links have the highest cross-socket bandwidth
        // (5.3 GB/s): the first tree level must pair MCM partners.
        let t = topo(&mcsim::presets::opteron());
        let sockets: Vec<usize> = (0..8).collect();
        let tree = MergeTree::build(&t, &sockets, 0);
        assert_eq!(tree.depth(), 3);
        let first: Vec<(usize, usize)> = tree.levels[0]
            .iter()
            .map(|s| (s.src.min(s.dst), s.src.max(s.dst)))
            .collect();
        for &(a, b) in &first {
            assert_eq!(b, a + 1, "level 0 should pair MCM partners, got {first:?}");
            assert_eq!(a % 2, 0);
        }
        // Root is the destination.
        assert_eq!(tree.levels.last().unwrap()[0].dst, 0);
    }

    #[test]
    fn every_socket_consumed_exactly_once() {
        let t = topo(&mcsim::presets::westmere());
        let sockets: Vec<usize> = (0..8).collect();
        let tree = MergeTree::build(&t, &sockets, 3);
        let mut consumed: Vec<usize> = tree.levels.iter().flatten().map(|s| s.src).collect();
        consumed.sort_unstable();
        // 7 merges for 8 sockets; every socket but the dest is consumed
        // exactly once.
        assert_eq!(consumed, vec![0, 1, 2, 4, 5, 6, 7]);
        assert_eq!(tree.dest, 3);
    }

    #[test]
    fn odd_socket_count_gets_a_bye() {
        let t = topo(&mcsim::presets::westmere());
        let tree = MergeTree::build(&t, &[0, 1, 2], 0);
        let total_steps: usize = tree.levels.iter().map(|l| l.len()).sum();
        assert_eq!(total_steps, 2);
        assert_eq!(tree.levels.last().unwrap()[0].dst, 0);
    }

    #[test]
    fn single_socket_empty_tree() {
        let t = topo(&mcsim::presets::ivy());
        let tree = MergeTree::build(&t, &[1], 1);
        assert_eq!(tree.depth(), 0);
    }
}
