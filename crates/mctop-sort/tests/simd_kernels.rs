//! Byte-identity of every merge kernel: the SIMD networks (and the
//! scalar fallback) must produce exactly the bytes of the reference
//! two-way merge for arbitrary inputs — empty sides, duplicate-heavy
//! value domains and non-multiple-of-width tails included — under both
//! forced-scalar and auto-detect dispatch.

use mctop_sort::merge::{
    merge3_into,
    merge_into, //
};
use mctop_sort::simd;
use proptest::prelude::*;

/// All dispatch modes a test run exercises: the forced-scalar table,
/// the auto-detected table, and every host-supported kernel
/// individually (auto and scalar are among them, so a scalar-only
/// build still runs both dispatch modes).
fn dispatch_modes() -> Vec<&'static simd::KernelTable> {
    let mut modes = vec![simd::scalar(), simd::auto()];
    modes.extend(simd::supported());
    modes
}

fn reference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = vec![0u32; a.len() + b.len()];
    merge_into(a, b, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full-domain values, arbitrary lengths (including empties and
    /// tails around every vector width).
    #[test]
    fn kernels_byte_identical_full_domain(
        a in prop::collection::vec(any::<u32>(), 0..2500),
        b in prop::collection::vec(any::<u32>(), 0..2500),
    ) {
        let (mut a, mut b) = (a, b);
        a.sort_unstable();
        b.sort_unstable();
        let expected = reference(&a, &b);
        for table in dispatch_modes() {
            let mut out = vec![0u32; expected.len()];
            (table.merge)(&a, &b, &mut out);
            prop_assert_eq!(&out, &expected, "kernel {} diverged", table.name);
        }
    }

    /// Duplicate-heavy domain: long equal runs stress the tie paths of
    /// the networks and the shared scalar epilogue.
    #[test]
    fn kernels_byte_identical_duplicates(
        a in prop::collection::vec(any::<u32>().prop_map(|v| v % 5), 0..2000),
        b in prop::collection::vec(any::<u32>().prop_map(|v| v % 5), 0..2000),
    ) {
        let (mut a, mut b) = (a, b);
        a.sort_unstable();
        b.sort_unstable();
        let expected = reference(&a, &b);
        for table in dispatch_modes() {
            let mut out = vec![0u32; expected.len()];
            (table.merge)(&a, &b, &mut out);
            prop_assert_eq!(&out, &expected, "kernel {} diverged on dups", table.name);
        }
    }

    /// The shared scalar epilogue on its own: a three-way merge of a
    /// pending register with two tails equals merging everything.
    #[test]
    fn shared_epilogue_is_a_three_way_merge(
        p in prop::collection::vec(any::<u32>(), 0..16),
        a in prop::collection::vec(any::<u32>(), 0..200),
        b in prop::collection::vec(any::<u32>(), 0..200),
    ) {
        let (mut p, mut a, mut b) = (p, a, b);
        p.sort_unstable();
        a.sort_unstable();
        b.sort_unstable();
        let ab = reference(&a, &b);
        let expected = reference(&p, &ab);
        let mut out = vec![0u32; expected.len()];
        merge3_into(&p, &a, &b, &mut out);
        prop_assert_eq!(out, expected);
    }
}

/// Fixed-seed golden: the merged bytes of every kernel hash to the
/// scalar reference's hash (a cheap tripwire independent of proptest's
/// case stream).
#[test]
fn golden_merge_hash_matches_scalar() {
    // Deterministic xorshift64 stream.
    let mut x = 0x243F_6A88_85A3_08D3u64;
    let mut run = |n: usize, cap: u32| -> Vec<u32> {
        let mut v: Vec<u32> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x as u32) % cap
            })
            .collect();
        v.sort_unstable();
        v
    };
    let fnv = |v: &[u32]| -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &e in v {
            h = (h ^ u64::from(e)).wrapping_mul(0x100000001b3);
        }
        h
    };
    for (na, nb, cap) in [
        (10_001usize, 8_192usize, u32::MAX),
        (5, 100_000, 64),
        (65_536, 65_536, u32::MAX),
    ] {
        let a = run(na, cap);
        let b = run(nb, cap);
        let expected = fnv(&reference(&a, &b));
        for table in dispatch_modes() {
            let mut out = vec![0u32; na + nb];
            (table.merge)(&a, &b, &mut out);
            assert_eq!(
                fnv(&out),
                expected,
                "kernel {} golden hash diverged (na={na} nb={nb})",
                table.name
            );
        }
    }
}
