//! Property-based tests: MCTOP-ALG inverts arbitrary machine shapes,
//! and placements respect their invariants for arbitrary requests.

use proptest::prelude::*;

use mcsim::machine::IntraLevel;
use mcsim::{
    Interconnect,
    MachineSpec, //
};
use mctop::alg::probe::{
    collect,
    collect_parallel,
    ProbeStats, //
};
use mctop::backend::SimProber;
use mctop::view::TopoView;
use mctop::AdaptiveCfg;
use mctop::McTopError;
use mctop::ProbeConfig;
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};

/// A random-but-valid machine spec: 1-4 sockets, 2-6 cores, 1-4 SMT,
/// one of the numbering schemes.
fn arb_spec() -> impl Strategy<Value = MachineSpec> {
    (1usize..=4, 2usize..=6, 1usize..=4, 0u8..=2, any::<u64>()).prop_map(
        |(sockets, cores, smt, numbering, seed)| {
            let mut m = mcsim::presets::synthetic_small();
            m.name = format!("prop-{sockets}x{cores}x{smt}");
            m.sockets = sockets;
            m.cores_per_socket = cores;
            m.smt_per_core = smt;
            m.smt_latency = if smt > 1 { 30 } else { 0 };
            m.nodes = sockets;
            m.intra_levels = vec![IntraLevel {
                group_cores: cores,
                latency: 100,
            }];
            m.interconnect = Interconnect::full(sockets, 180, 110, 12.0);
            m.local_node_of_socket = (0..sockets).collect();
            m.os_node_of_socket = (0..sockets).collect();
            m.numbering = match numbering {
                0 => mcsim::Numbering::CoresFirst,
                1 => mcsim::Numbering::SocketMajor,
                _ => mcsim::Numbering::Scrambled(seed),
            };
            m
        },
    )
}

/// Checks the `collect_parallel` determinism contract on one machine:
/// for every worker count, the table, the additive statistics, and any
/// failure are identical to the sequential `collect`, and the modelled
/// critical path is bounded by the sequential one (equal at `jobs=1`,
/// at least total/jobs otherwise).
fn assert_parallel_equals_sequential(
    spec: &MachineSpec,
    seed: Option<u64>,
    adaptive: bool,
    jobs_list: &[usize],
) -> Result<(), String> {
    let cfg = ProbeConfig {
        reps: 5,
        adaptive: adaptive.then(|| AdaptiveCfg {
            pilot_reps: 3,
            ..AdaptiveCfg::default()
        }),
        ..ProbeConfig::fast()
    };
    let label = |jobs: usize| {
        format!(
            "{} seed={seed:?} adaptive={adaptive} jobs={jobs}",
            spec.name
        )
    };
    let mk = || match seed {
        Some(s) => SimProber::new(spec, s),
        None => SimProber::noiseless(spec),
    };
    let seq = collect(&mut mk(), &cfg);
    for &jobs in jobs_list {
        let par = collect_parallel(&mut mk(), &cfg, jobs);
        match (&seq, &par) {
            (Ok((st, ss)), Ok((pt, ps))) => {
                if st != pt {
                    return Err(format!("{}: tables diverge", label(jobs)));
                }
                let additive = |s: &ProbeStats| {
                    (
                        s.pairs,
                        s.probes,
                        s.pilot_probes,
                        s.refined_pairs,
                        s.retries,
                        s.sample_cycles,
                        s.overhead_cycles,
                    )
                };
                if additive(ss) != additive(ps) {
                    return Err(format!("{}: stats diverge ({ss:?} vs {ps:?})", label(jobs)));
                }
                if ps.critical_cycles > ss.critical_cycles
                    || ps.critical_cycles < ss.critical_cycles / jobs.max(1) as u64
                    || (jobs <= 1 && ps.critical_cycles != ss.critical_cycles)
                {
                    return Err(format!(
                        "{}: critical path out of bounds ({} vs sequential {})",
                        label(jobs),
                        ps.critical_cycles,
                        ss.critical_cycles
                    ));
                }
            }
            (
                Err(McTopError::UnstableMeasurements {
                    pair: sp,
                    stdev_frac: sf,
                }),
                Err(McTopError::UnstableMeasurements {
                    pair: pp,
                    stdev_frac: pf,
                }),
            ) => {
                if sp != pp || sf != pf {
                    return Err(format!("{}: failures diverge", label(jobs)));
                }
            }
            (s, p) => {
                return Err(format!(
                    "{}: outcomes diverge ({s:?} vs {p:?})",
                    label(jobs)
                ));
            }
        }
    }
    Ok(())
}

/// The determinism contract on the big paper platforms (Westmere's 160
/// and SPARC's 256 contexts — the machines the parallel schedule exists
/// for), one fixed seed per platform to keep the runtime bounded.
#[test]
fn parallel_collection_equals_sequential_big_presets() {
    for spec in mcsim::presets::all_paper_platforms() {
        if spec.total_hwcs() <= 64 {
            continue; // covered by the proptest
        }
        for (seed, adaptive) in [(None, false), (Some(17), false), (Some(17), true)] {
            assert_parallel_equals_sequential(&spec, seed, adaptive, &[8]).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Inference over a noiseless oracle reconstructs the machine
    /// exactly, regardless of shape and context numbering.
    #[test]
    fn inference_inverts_the_machine(spec in arb_spec()) {
        spec.check().expect("generated spec is valid");
        let mut p = SimProber::noiseless(&spec);
        let cfg = ProbeConfig { reps: 3, ..ProbeConfig::fast() };
        let topo = mctop::infer(&mut p, &cfg).expect("inference");
        prop_assert_eq!(topo.num_sockets(), spec.sockets);
        prop_assert_eq!(topo.num_cores(), spec.total_cores());
        prop_assert_eq!(topo.smt(), spec.smt_per_core);
        // Latency table is exact.
        for a in 0..spec.total_hwcs() {
            for b in 0..spec.total_hwcs() {
                prop_assert_eq!(topo.get_latency(a, b), spec.true_latency(a, b));
            }
        }
        mctop::alg::validate::validate(&topo).expect("validates");
    }

    /// Placements never duplicate contexts, never exceed capacity, and
    /// respect the requested thread count, for any policy and count.
    #[test]
    fn placement_invariants(spec in arb_spec(), threads in 1usize..=24, policy_idx in 0usize..12) {
        let mut p = SimProber::noiseless(&spec);
        let cfg = ProbeConfig { reps: 3, ..ProbeConfig::fast() };
        let topo = mctop::infer(&mut p, &cfg).expect("inference");
        let policy = Policy::ALL[policy_idx];
        let res = Placement::new(&topo, policy, PlaceOpts { n_threads: Some(threads), n_sockets: None });
        match res {
            Ok(place) => {
                prop_assert_eq!(place.order().len(), threads);
                let mut seen = std::collections::HashSet::new();
                for &h in place.order() {
                    prop_assert!(h < topo.num_hwcs());
                    prop_assert!(seen.insert(h), "duplicate context {}", h);
                }
                // Stats are consistent with the order.
                let s = place.stats();
                prop_assert_eq!(s.hwc_per_socket.iter().sum::<usize>(), threads);
            }
            Err(mctop_place::PlaceError::TooManyThreads { available, .. }) => {
                prop_assert!(threads > available);
            }
            Err(mctop_place::PlaceError::PowerUnavailable) => {
                prop_assert_eq!(policy, Policy::Power);
            }
            Err(mctop_place::PlaceError::BandwidthUnavailable) => {
                prop_assert_eq!(policy, Policy::RrScale);
            }
        }
    }

    /// The backoff quantum equals the maximum pairwise latency for any
    /// subset of contexts.
    #[test]
    fn backoff_quantum_is_max_latency(spec in arb_spec(), pick in prop::collection::vec(any::<u16>(), 2..6)) {
        let mut p = SimProber::noiseless(&spec);
        let cfg = ProbeConfig { reps: 3, ..ProbeConfig::fast() };
        let topo = mctop::infer(&mut p, &cfg).expect("inference");
        let hwcs: Vec<usize> = pick.iter().map(|&x| x as usize % topo.num_hwcs()).collect();
        let q = mctop_locks::BackoffCfg::from_mctop(&topo, &hwcs).quantum_cycles;
        let topo_ref = &topo;
        let max = hwcs
            .iter()
            .flat_map(|&a| hwcs.iter().map(move |&b| topo_ref.get_latency(a, b)))
            .max()
            .unwrap();
        prop_assert_eq!(q, max);
    }

    /// The precomputed `TopoView` answers exactly match the naive
    /// `Mctop` query-engine results, on every `mcsim` preset machine,
    /// with and without measurement noise. This is the contract that
    /// lets the placement/sort/runtime layers query the view instead of
    /// the model arenas.
    #[test]
    fn topo_view_matches_naive_queries(seed in any::<u64>(), pick in prop::collection::vec(any::<u16>(), 1..8)) {
        let mut specs = mcsim::presets::all_paper_platforms();
        specs.extend(mcsim::presets::all_synthetic());
        for spec in specs {
            for noisy in [false, true] {
                let cfg = ProbeConfig { reps: 3, ..ProbeConfig::fast() };
                let inferred = if noisy {
                    let mut p = SimProber::new(&spec, seed);
                    // The equivalence property is about the view, not
                    // about inference robustness: a machine whose noisy
                    // probes never stabilize for this seed is skipped.
                    match mctop::infer(&mut p, &ProbeConfig::fast()) {
                        Ok(t) => t,
                        Err(_) => continue,
                    }
                } else {
                    let mut p = SimProber::noiseless(&spec);
                    let mut t = mctop::infer(&mut p, &cfg).expect("noiseless inference");
                    // Enrich the noiseless run so the bandwidth-ranked
                    // queries are exercised with real measurements.
                    let mut mem = mctop::enrich::SimEnricher::new(&spec);
                    let mut pow = mctop::enrich::SimEnricher::new(&spec);
                    mctop::enrich::enrich_all(&mut t, &mut mem, &mut pow).expect("enrichment");
                    t
                };
                let view = TopoView::build(&inferred).expect("inferred topologies have a socket level");
                let topo = &inferred;
                let s = topo.num_sockets();
                prop_assert_eq!(view.socket_level(), topo.socket_level_index());
                prop_assert_eq!(view.intra_socket_latency(), topo.intra_socket_latency());
                for a in 0..s {
                    prop_assert_eq!(view.closest_sockets(a), &topo.closest_sockets(a)[..]);
                    prop_assert_eq!(
                        view.socket_hwcs_cores_first(a),
                        &topo.socket_hwcs_cores_first(a)[..]
                    );
                    prop_assert_eq!(view.socket_hwcs_compact(a), &topo.socket_hwcs_compact(a)[..]);
                    for b in 0..s {
                        prop_assert_eq!(view.socket_latency(a, b), topo.socket_latency(a, b));
                        prop_assert_eq!(view.cross_bandwidth(a, b), topo.cross_bandwidth(a, b));
                    }
                }
                prop_assert_eq!(view.min_latency_socket_pair(), topo.min_latency_socket_pair());
                prop_assert_eq!(view.max_latency_socket_pair(), topo.max_latency_socket_pair());
                prop_assert_eq!(
                    view.sockets_by_local_bandwidth(),
                    &topo.sockets_by_local_bandwidth()[..]
                );
                prop_assert_eq!(
                    view.socket_order_bandwidth_proximity(),
                    &topo.socket_order_bandwidth_proximity()[..]
                );
                let hwcs: Vec<usize> = pick.iter().map(|&x| x as usize % topo.num_hwcs()).collect();
                prop_assert_eq!(view.sockets_used_by(&hwcs), topo.sockets_used_by(&hwcs));
                prop_assert_eq!(view.min_bandwidth_of(&hwcs), topo.min_bandwidth_of(&hwcs));
                prop_assert_eq!(view.max_latency_between(&hwcs), topo.max_latency_between(&hwcs));
                for &h in &hwcs {
                    prop_assert_eq!(view.socket_of(h), topo.socket_of(h));
                    prop_assert_eq!(view.node_of(h), topo.get_local_node(h));
                }
            }
        }
    }

    /// `collect_parallel` is byte-identical to the sequential `collect`
    /// for every worker count, with and without measurement noise, with
    /// and without adaptive two-phase repetitions — on the small preset
    /// machines and on arbitrary machine shapes (odd context counts
    /// exercise the schedule's bye slot). The big platforms get the
    /// same check in `parallel_collection_equals_sequential_big_presets`
    /// below. This is the determinism contract that makes `--jobs` a
    /// pure wall-clock knob.
    #[test]
    fn parallel_collection_equals_sequential(seed in any::<u64>(), spec in arb_spec()) {
        let mut specs: Vec<MachineSpec> = mcsim::presets::all_paper_platforms()
            .into_iter()
            .chain(mcsim::presets::all_synthetic())
            .filter(|s| s.total_hwcs() <= 64)
            .collect();
        specs.push(spec);
        for spec in &specs {
            for noisy in [false, true] {
                for adaptive in [false, true] {
                    assert_parallel_equals_sequential(
                        spec, noisy.then_some(seed), adaptive, &[1, 2, 8],
                    ).map_err(TestCaseError::fail)?;
                }
            }
        }
    }

    /// Sorting via the topology-aware path is always a sorted
    /// permutation of the input.
    #[test]
    fn mctop_sort_is_a_sorting_function(data in prop::collection::vec(any::<u32>(), 0..4000), threads in 1usize..=6) {
        let spec = mcsim::presets::synthetic_small();
        let mut p = SimProber::noiseless(&spec);
        let cfg = ProbeConfig { reps: 3, ..ProbeConfig::fast() };
        let topo = mctop::infer(&mut p, &cfg).expect("inference");
        let mut v = data.clone();
        mctop_sort::mctop_sort(&mut v, &topo, threads, 0);
        let mut expected = data;
        expected.sort_unstable();
        prop_assert_eq!(v, expected);
    }
}
