//! Executor lifecycle smoke test (run as a dedicated step in the CI
//! build-test matrix): arm an executor over a shipped description,
//! run sort and MapReduce on it, re-arm it over a *different*
//! placement (different policy and machine), run both again, then
//! shut down explicitly.

use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};
use mctop_runtime::{
    ExecCfg,
    Executor, //
};

struct WordLen;

impl mctop_mapred::MapReduce for WordLen {
    type Item = u32;
    type K = u32;
    type V = u32;
    type Out = u32;
    fn map(&self, item: &u32, emit: &mut dyn FnMut(u32, u32)) {
        emit(item % 10, 1);
    }
    fn reduce(&self, _k: &u32, values: Vec<u32>) -> u32 {
        values.into_iter().sum()
    }
}

fn data(n: usize) -> Vec<u32> {
    let mut x = 0xdead_beefu64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u32
        })
        .collect()
}

fn drive(exec: &Executor, view: &mctop::TopoView) {
    // Sort.
    let mut v = data(60_000);
    let mut expected = v.clone();
    expected.sort_unstable();
    mctop_sort::mctop_sort_on(exec, &mut v, view, 0, &mut mctop_sort::SortScratch::new());
    assert_eq!(v, expected);
    // MapReduce on the same executor.
    let items: Vec<u32> = (0..9_000).collect();
    let out = mctop_mapred::run_job_on(exec, &WordLen, &items, &Default::default());
    assert_eq!(out.len(), 10);
    for (k, c) in out {
        assert_eq!(c, 900, "key {k}");
    }
}

#[test]
fn spawn_run_rearm_shutdown() {
    let registry = mctop::Registry::shipped();
    let ivy = registry.view("ivy").expect("shipped desc");
    let westmere = registry.view("westmere").expect("shipped desc");

    let placement =
        Placement::with_view(&ivy, Policy::RrCore, PlaceOpts::threads(8)).expect("places");
    let mut exec = Executor::with_cfg(
        Some(&ivy),
        &placement,
        ExecCfg {
            workers: None,
            os_pin: false,
        },
    );
    assert_eq!(exec.len(), 8);
    drive(&exec, &ivy);

    // Re-arm over a different machine and policy: the same executor
    // object keeps serving.
    let placement2 =
        Placement::with_view(&westmere, Policy::ConHwc, PlaceOpts::threads(8)).expect("places");
    exec.rearm(Some(&westmere), &placement2);
    assert_eq!(
        exec.worker_ctxs()[0].hwc(),
        placement2.order()[0],
        "re-armed workers must sit on the new placement's slots"
    );
    drive(&exec, &westmere);

    // Graceful, idempotent shutdown.
    exec.shutdown();
    exec.shutdown();
}
