//! Description-file round trips (Section 2: "created once, then used
//! to load the topology") across every platform, enriched and not.

use mctop::backend::SimProber;
use mctop::desc::Provenance;
use mctop::enrich::{
    enrich_all,
    SimEnricher, //
};
use mctop::ProbeConfig;

fn cfg() -> ProbeConfig {
    ProbeConfig {
        reps: 3,
        ..ProbeConfig::fast()
    }
}

#[test]
fn roundtrip_every_platform_enriched() {
    let dir = std::env::temp_dir();
    for spec in mcsim::presets::all_paper_platforms() {
        let mut p = SimProber::noiseless(&spec);
        let mut topo = mctop::infer(&mut p, &cfg()).unwrap();
        let mut mem = SimEnricher::new(&spec);
        let mut pow = SimEnricher::new(&spec);
        enrich_all(&mut topo, &mut mem, &mut pow).unwrap();
        topo.freq_ghz = Some(spec.freq_ghz);
        let prov = Provenance::new(&spec.name, &cfg(), None, true);

        let path = dir.join(mctop::desc::default_filename(&format!("it-{}", spec.name)));
        mctop::desc::save(&topo, &prov, &path).unwrap();
        let (loaded, loaded_prov) = mctop::desc::load_full(&path).unwrap();
        assert_eq!(topo, loaded, "{}", spec.name);
        assert_eq!(prov, loaded_prov, "{}", spec.name);
        // The reloaded topology answers queries identically.
        assert_eq!(loaded.max_latency(), topo.max_latency());
        assert_eq!(loaded.closest_sockets(0), topo.closest_sockets(0));
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn description_is_human_inspectable_json() {
    let spec = mcsim::presets::synthetic_small();
    let mut p = SimProber::noiseless(&spec);
    let topo = mctop::infer(&mut p, &cfg()).unwrap();
    let prov = Provenance::new(&spec.name, &cfg(), None, false);
    let s = mctop::desc::to_string(&topo, &prov).unwrap();
    // Key structures visible by name, provenance header included.
    for needle in [
        "\"sockets\"",
        "\"levels\"",
        "\"lat_table\"",
        "\"version\"",
        "\"provenance\"",
        "\"machine\"",
        "\"generator\"",
    ] {
        assert!(s.contains(needle), "missing {needle}");
    }
}

#[test]
fn loading_rejects_tampered_hierarchies() {
    let spec = mcsim::presets::synthetic_small();
    let mut p = SimProber::noiseless(&spec);
    let topo = mctop::infer(&mut p, &cfg()).unwrap();
    let prov = Provenance::new(&spec.name, &cfg(), None, false);
    let s = mctop::desc::to_string(&topo, &prov).unwrap();
    let mut v: serde_json::Value = serde_json::from_str(&s).unwrap();
    // Move a context into the wrong socket record.
    v["topology"]["sockets"][0]["hwcs"][0] = serde_json::json!(99);
    assert!(mctop::desc::from_str(&v.to_string()).is_err());
}
