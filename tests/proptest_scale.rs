//! Dense/sparse view equivalence at mesh scale: the sparse
//! [`TopoView`] backend must answer every query identically to the
//! dense one — on each committed description (paper platforms, small
//! synthetics, and the NoC family) and on arbitrary generated mesh and
//! circulant shapes up to 512 contexts.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use mctop::desc;
use mctop::view::{
    TopoView,
    ViewBackend, //
};
use mctop::Mctop;

fn descs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("descs")
}

/// Builds the topology's view on both backends and checks that every
/// accessor the consumers use answers identically: latencies, hop
/// counts, bandwidths, neighbor orders, extreme pairs, and the
/// CON-policy bandwidth/proximity walk.
fn assert_backends_agree(topo: &Mctop) -> Result<(), TestCaseError> {
    let name = topo.name.clone();
    let dense = TopoView::with_backend(Arc::new(topo.clone()), ViewBackend::Dense);
    let sparse = TopoView::with_backend(Arc::new(topo.clone()), ViewBackend::Sparse);
    prop_assert_eq!(dense.backend(), ViewBackend::Dense);
    prop_assert_eq!(sparse.backend(), ViewBackend::Sparse);

    let s = topo.num_sockets();
    for a in 0..s {
        for b in 0..s {
            prop_assert_eq!(
                dense.socket_latency(a, b),
                sparse.socket_latency(a, b),
                "{}: latency({}, {})",
                &name,
                a,
                b
            );
            prop_assert_eq!(
                dense.socket_hops(a, b),
                sparse.socket_hops(a, b),
                "{}: hops({}, {})",
                &name,
                a,
                b
            );
            prop_assert_eq!(
                dense.cross_bandwidth(a, b),
                sparse.cross_bandwidth(a, b),
                "{}: cross_bw({}, {})",
                &name,
                a,
                b
            );
        }
        prop_assert_eq!(
            dense.local_bandwidth(a),
            sparse.local_bandwidth(a),
            "{}: local_bw({})",
            &name,
            a
        );
        prop_assert_eq!(
            dense.closest_sockets(a),
            sparse.closest_sockets(a),
            "{}: closest({})",
            &name,
            a
        );
    }
    prop_assert_eq!(
        dense.intra_socket_latency(),
        sparse.intra_socket_latency(),
        "{}: intra",
        &name
    );
    prop_assert_eq!(
        dense.min_latency_socket_pair(),
        sparse.min_latency_socket_pair(),
        "{}: min pair",
        &name
    );
    prop_assert_eq!(
        dense.max_latency_socket_pair(),
        sparse.max_latency_socket_pair(),
        "{}: max pair",
        &name
    );
    prop_assert_eq!(
        dense.sockets_by_local_bandwidth(),
        sparse.sockets_by_local_bandwidth(),
        "{}: bw ranking",
        &name
    );
    prop_assert_eq!(
        dense.socket_order_bandwidth_proximity(),
        sparse.socket_order_bandwidth_proximity(),
        "{}: bw/proximity walk",
        &name
    );
    Ok(())
}

/// Every committed description answers identically on both backends —
/// including the large disk-only NoC descs.
#[test]
fn backends_agree_on_every_committed_desc() {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(descs_dir())
        .expect("descs dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.to_str().is_some_and(|s| s.ends_with(".mct.json")))
        .collect();
    entries.sort();
    assert!(entries.len() >= 16, "committed desc library went missing?");
    for path in entries {
        let topo = desc::load(&path).unwrap_or_else(|e| {
            panic!("{}: cannot load: {e}", path.display());
        });
        assert_backends_agree(&topo).unwrap_or_else(|e| {
            panic!("{}: backends diverge: {e}", path.display());
        });
    }
}

/// A generated NoC shape: an even-sided 2D mesh (8 to 512 contexts) or
/// a valid multiplicative circulant.
fn arb_noc_spec() -> impl Strategy<Value = mcsim::MachineSpec> {
    (0usize..=11).prop_map(|shape| match shape {
        0..=7 => mcsim::presets::mesh(2 * (shape + 1)),
        8 => mcsim::presets::multiplicative_circulant(16, 4),
        9 => mcsim::presets::multiplicative_circulant(64, 4),
        10 => mcsim::presets::multiplicative_circulant(64, 8),
        _ => mcsim::presets::multiplicative_circulant(144, 8),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Canonically inferred NoC topologies of arbitrary shape answer
    /// identically on both backends.
    #[test]
    fn backends_agree_on_generated_noc_shapes(spec in arb_noc_spec()) {
        spec.check().expect("generated spec is valid");
        let (topo, _) = desc::canonical(&spec).expect("canonical inference");
        assert_backends_agree(&topo)?;
    }
}
