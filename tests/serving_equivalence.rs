//! End-to-end equivalence: an in-process `mctopd` must answer every
//! request byte-identically to the direct library call, including
//! under concurrency — 64 clients hammering every committed
//! description at once.

use std::path::PathBuf;
use std::sync::atomic::{
    AtomicUsize,
    Ordering, //
};
use std::sync::Arc;

use mctop::registry::Registry;
use mctop_client::{
    Client,
    Request,
    Response, //
};
use mctopd::{
    eval,
    Server,
    ServerCfg, //
};

/// Per-machine expected answers: `(machine, [(query, args, text)])`,
/// precomputed through the direct library calls.
type ExpectedAnswers = Vec<(String, Vec<(String, Vec<String>, String)>)>;

/// A unique socket path per test (tests run concurrently in one
/// binary; sockets must not collide).
fn sock_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mctopd-eq-{}-{tag}-{n}.sock", std::process::id()))
}

/// The query vocabulary exercised per machine, with representative
/// arguments (all valid on every committed description).
fn queries() -> Vec<(&'static str, Vec<String>)> {
    let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    vec![
        ("summary", vec![]),
        ("max-latency", vec![]),
        ("walk", vec![]),
        ("sockets-by-bw", vec![]),
        ("latency", s(&["0", "1"])),
        ("socket-latency", s(&["0", "0"])),
        ("closest", s(&["0"])),
        ("socket-of", s(&["1"])),
        ("core-of", s(&["1"])),
        ("node-of", s(&["0"])),
        ("hwcs", s(&["0"])),
        ("hwcs", s(&["0", "cores-first"])),
        ("alloc-plan", s(&["local", "4"])),
        ("alloc-plan", s(&["interleave", "8"])),
    ]
}

#[test]
fn every_desc_every_query_byte_identical() {
    let server = Server::bind(ServerCfg::new(sock_path("all"))).unwrap();
    let sock = server.socket_path().to_path_buf();
    let handle = server.start();

    let registry = Registry::shipped();
    let mut client = Client::connect(&sock).unwrap();

    // ListTopologies == eval::list_text == what `mct list` prints.
    assert_eq!(
        client.list_topologies().unwrap(),
        eval::list_text(&registry).unwrap()
    );

    for name in registry.names().unwrap() {
        let view = registry.view(&name).unwrap();
        for (query, args) in queries() {
            let local = eval::query_text(&view, query, &args).unwrap();
            let remote = client.query(&name, query, &args).unwrap();
            assert_eq!(remote, local, "{name}/{query} diverged over the wire");
        }
        // The dedicated Placement / AllocPlan requests too.
        assert_eq!(
            client.placement(&name, "RR_CORE", 4).unwrap(),
            eval::placement_text(&view, "RR_CORE", 4).unwrap(),
            "{name} placement diverged"
        );
        assert_eq!(
            client.alloc_plan(&name, "local", 4).unwrap(),
            eval::alloc_plan_text(&view, "local", 4).unwrap(),
            "{name} alloc plan diverged"
        );
    }

    handle.stop();
}

#[test]
fn sixty_four_concurrent_clients_all_byte_identical() {
    const CLIENTS: usize = 64;

    let server = Server::bind(ServerCfg::new(sock_path("conc"))).unwrap();
    let sock = server.socket_path().to_path_buf();
    let handle = server.start();

    let registry = Registry::shipped();
    let names = registry.names().unwrap();
    // Expected answers computed once, up front, via the direct library
    // calls — the servers' responses must match these bytes exactly.
    let expected: Arc<ExpectedAnswers> = Arc::new(
        names
            .iter()
            .map(|name| {
                let view = registry.view(name).unwrap();
                let per_query = queries()
                    .into_iter()
                    .map(|(q, args)| {
                        let text = eval::query_text(&view, q, &args).unwrap();
                        (q.to_string(), args, text)
                    })
                    .collect();
                (name.clone(), per_query)
            })
            .collect(),
    );

    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let sock = sock.clone();
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(&sock).unwrap();
                // Each client walks the machines starting at a
                // different offset so the server sees mixed traffic.
                for i in 0..expected.len() {
                    let (name, per_query) = &expected[(c + i) % expected.len()];
                    for (q, args, want) in per_query {
                        let got = client.query(name, q, args).unwrap();
                        assert_eq!(&got, want, "client {c}: {name}/{q} diverged");
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // The server counted every connection and request.
    let snap = handle.metrics().server_snapshot();
    assert_eq!(snap.connections_opened, CLIENTS as u64);
    assert!(snap.requests >= (CLIENTS * queries().len()) as u64);

    handle.stop();
}

#[test]
fn pipelined_batches_answer_in_order() {
    let server = Server::bind(ServerCfg::new(sock_path("batch"))).unwrap();
    let sock = server.socket_path().to_path_buf();
    let handle = server.start();

    let registry = Registry::shipped();
    let name = registry.names().unwrap()[0].clone();
    let view = registry.view(&name).unwrap();

    let mut client = Client::connect(&sock).unwrap();
    let reqs: Vec<Request> = queries()
        .into_iter()
        .map(|(q, args)| Request::Query {
            desc: name.clone(),
            query: q.into(),
            args,
        })
        .collect();
    let resps = client.batch(&reqs).unwrap();
    assert_eq!(resps.len(), reqs.len());
    for (req, resp) in reqs.iter().zip(&resps) {
        let Request::Query { query, args, .. } = req else {
            unreachable!()
        };
        let want = eval::query_text(&view, query, args).unwrap();
        match resp {
            Response::Ok { body } => {
                assert_eq!(body, want.as_bytes(), "batched {query} diverged")
            }
            other => panic!("batched {query}: unexpected {other:?}"),
        }
    }

    // The whole burst was executed as few batches, not one-by-one
    // (the server drained the pipelined frames together).
    let snap = handle.metrics().server_snapshot();
    assert!(
        snap.batches < snap.requests,
        "no pipelining: {} batches for {} requests",
        snap.batches,
        snap.requests
    );
    handle.stop();
}

#[test]
fn server_errors_match_library_errors() {
    let server = Server::bind(ServerCfg::new(sock_path("errs"))).unwrap();
    let sock = server.socket_path().to_path_buf();
    let handle = server.start();

    let registry = Registry::shipped();
    let name = registry.names().unwrap()[0].clone();
    let view = registry.view(&name).unwrap();
    let mut client = Client::connect(&sock).unwrap();

    // The server's error message is the library's error message.
    let cases: Vec<(&str, Vec<String>)> = vec![
        ("nope", vec![]),
        ("latency", vec!["0".into()]),
        ("latency", vec!["x".into(), "1".into()]),
        ("closest", vec!["99999".into()]),
    ];
    for (q, args) in cases {
        let want = eval::query_text(&view, q, &args).unwrap_err();
        let got = client.query(&name, q, &args).unwrap_err();
        let msg = got.to_string();
        assert!(
            msg.contains(want.message()),
            "{q}: server said {msg:?}, library said {:?}",
            want.message()
        );
    }

    // Unknown machine: same registry error text.
    let err = client.query("no-such-machine", "summary", &[]).unwrap_err();
    let want = eval::resolve_view(&registry, "no-such-machine").unwrap_err();
    assert!(err.to_string().contains(want.message()));

    handle.stop();
}
