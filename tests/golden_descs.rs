//! Golden coverage of the committed `descs/` library: every file must
//! be exactly what the canonical inference pipeline produces today
//! (inference determinism + format stability), and the registry must
//! serve it as one shared view.

use std::path::PathBuf;
use std::sync::Arc;

use mctop::desc;
use mctop::registry::{
    self,
    Registry, //
};

fn descs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("descs")
}

/// The cache-coherent presets (paper platforms + small synthetics) —
/// all of them are shipped compiled-in.
fn all_specs() -> Vec<mcsim::MachineSpec> {
    mcsim::presets::all_paper_platforms()
        .into_iter()
        .chain(mcsim::presets::all_synthetic())
        .collect()
}

/// Every preset with a committed desc file, including the mesh-scale
/// NoC family (of which only the 64-socket members are compiled in).
fn committed_specs() -> Vec<mcsim::MachineSpec> {
    all_specs()
        .into_iter()
        .chain(mcsim::presets::all_mesh_scale())
        .collect()
}

/// `load(descs/<name>) == alg::run(preset)` (+ enrichment) for every
/// preset, down to the exact bytes: the committed artifact and a fresh
/// canonical inference agree (the pipeline is noiseless, so there is no
/// measurement noise to tolerate), and `mct regen-descs` on a clean
/// tree is a no-op diff (what the golden-descriptions CI job enforces
/// through the binary).
#[test]
fn committed_descs_match_fresh_canonical_inference() {
    for spec in committed_specs() {
        let path = descs_dir().join(desc::default_filename(&spec.name));
        let on_disk = std::fs::read_to_string(&path).expect("committed desc exists");
        let (fresh, fresh_prov) = desc::canonical(&spec).expect("canonical inference");
        let rendered = desc::to_string(&fresh, &fresh_prov).expect("render");
        assert_eq!(on_disk, rendered, "{}: descs/ file is stale", spec.name);
        // And the artifact loads back to that same inference result.
        let (loaded, prov) = desc::from_str_full(&on_disk).unwrap_or_else(|e| {
            panic!("{}: cannot load {}: {e}", spec.name, path.display());
        });
        assert_eq!(loaded, fresh, "{}: loaded desc diverges", spec.name);
        assert_eq!(prov, fresh_prov, "{}: provenance drifted", spec.name);
    }
}

/// Parallel canonical regeneration is byte-identical to the committed
/// artifacts: the `--jobs` knob of `mct regen-descs` / `mct infer` can
/// never change a description file (the `collect_parallel` determinism
/// contract, checked here end-to-end through inference, enrichment and
/// serialization on every preset).
#[test]
fn parallel_canonical_inference_is_byte_identical() {
    for spec in committed_specs() {
        let path = descs_dir().join(desc::default_filename(&spec.name));
        let on_disk = std::fs::read_to_string(&path).expect("committed desc exists");
        let rendered = desc::canonical_string_jobs(&spec, 8).expect("parallel canonical");
        assert_eq!(
            on_disk, rendered,
            "{}: jobs=8 regeneration differs",
            spec.name
        );
    }
}

/// The shipped (compiled-in) library is the same set of files.
#[test]
fn shipped_library_matches_committed_files() {
    let mut names = registry::shipped_names();
    names.sort_unstable();
    // Compiled in: every cache-coherent preset plus the 64-socket
    // mesh-scale members (the larger NoC descs stay disk-only).
    let mut specs: Vec<String> = all_specs().iter().map(|s| s.name.clone()).collect();
    specs.push("synth-mesh-64".into());
    specs.push("synth-circulant-64".into());
    specs.sort();
    assert_eq!(names, specs);
    for name in registry::shipped_names() {
        let path = descs_dir().join(desc::default_filename(name));
        let on_disk = std::fs::read_to_string(&path).expect("committed desc exists");
        assert_eq!(
            registry::shipped_source(name),
            Some(on_disk.as_str()),
            "{name}: compiled-in copy is stale"
        );
    }
}

/// Repeated and concurrent registry lookups share one `Arc<TopoView>`.
#[test]
fn registry_shares_one_view_per_topology() {
    let reg = Arc::new(Registry::shipped());
    let first = reg.view("sparc").expect("shipped sparc");
    assert!(Arc::ptr_eq(&first, &reg.view("sparc").unwrap()));

    let views: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let reg = Arc::clone(&reg);
                scope.spawn(move || reg.view("sparc").unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for view in &views {
        assert!(Arc::ptr_eq(&first, view));
    }
    assert_eq!(reg.cached(), 1);
}

/// Every shipped description builds a view and answers the basic
/// queries the application layers rely on.
#[test]
fn every_shipped_description_serves_queries() {
    let reg = Registry::shipped();
    let shipped = registry::shipped_names();
    let specs: Vec<_> = committed_specs()
        .into_iter()
        .filter(|s| shipped.contains(&s.name.as_str()))
        .collect();
    for spec in &specs {
        let view = reg.view(&spec.name).expect("loadable");
        assert_eq!(view.num_hwcs(), spec.total_hwcs(), "{}", spec.name);
        assert_eq!(view.num_sockets(), spec.sockets, "{}", spec.name);
        assert!(view.intra_socket_latency() > 0, "{}", spec.name);
        assert!(view.socket_level().is_some(), "{}", spec.name);
        // Enrichment made it into the artifact.
        assert!(view.topo().caches.is_some(), "{}", spec.name);
        assert_eq!(view.topo().freq_ghz, Some(spec.freq_ghz), "{}", spec.name);
    }
    assert_eq!(specs.len(), shipped.len());
    assert_eq!(reg.cached(), shipped.len());
}

/// The disk-only mesh-scale descs (too large to compile in) still load,
/// round-trip byte-identically, and pick the sparse view backend.
#[test]
fn disk_only_mesh_descs_round_trip_and_serve() {
    let shipped = registry::shipped_names();
    for spec in mcsim::presets::all_mesh_scale() {
        if shipped.contains(&spec.name.as_str()) {
            continue;
        }
        let path = descs_dir().join(desc::default_filename(&spec.name));
        let on_disk = std::fs::read_to_string(&path).expect("committed desc exists");
        let (topo, prov) = desc::from_str_full(&on_disk).expect("loads");
        assert_eq!(
            desc::to_string(&topo, &prov).expect("render"),
            on_disk,
            "{}: desc does not round-trip",
            spec.name
        );
        let view = mctop::TopoView::new(Arc::new(topo));
        assert_eq!(view.num_sockets(), spec.sockets, "{}", spec.name);
        assert_eq!(
            view.backend(),
            mctop::view::ViewBackend::Sparse,
            "{}",
            spec.name
        );
    }
}
