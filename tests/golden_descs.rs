//! Golden coverage of the committed `descs/` library: every file must
//! be exactly what the canonical inference pipeline produces today
//! (inference determinism + format stability), and the registry must
//! serve it as one shared view.

use std::path::PathBuf;
use std::sync::Arc;

use mctop::desc;
use mctop::registry::{
    self,
    Registry, //
};

fn descs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("descs")
}

fn all_specs() -> Vec<mcsim::MachineSpec> {
    mcsim::presets::all_paper_platforms()
        .into_iter()
        .chain(mcsim::presets::all_synthetic())
        .collect()
}

/// `load(descs/<name>) == alg::run(preset)` (+ enrichment) for every
/// preset, down to the exact bytes: the committed artifact and a fresh
/// canonical inference agree (the pipeline is noiseless, so there is no
/// measurement noise to tolerate), and `mct regen-descs` on a clean
/// tree is a no-op diff (what the golden-descriptions CI job enforces
/// through the binary).
#[test]
fn committed_descs_match_fresh_canonical_inference() {
    for spec in all_specs() {
        let path = descs_dir().join(desc::default_filename(&spec.name));
        let on_disk = std::fs::read_to_string(&path).expect("committed desc exists");
        let (fresh, fresh_prov) = desc::canonical(&spec).expect("canonical inference");
        let rendered = desc::to_string(&fresh, &fresh_prov).expect("render");
        assert_eq!(on_disk, rendered, "{}: descs/ file is stale", spec.name);
        // And the artifact loads back to that same inference result.
        let (loaded, prov) = desc::from_str_full(&on_disk).unwrap_or_else(|e| {
            panic!("{}: cannot load {}: {e}", spec.name, path.display());
        });
        assert_eq!(loaded, fresh, "{}: loaded desc diverges", spec.name);
        assert_eq!(prov, fresh_prov, "{}: provenance drifted", spec.name);
    }
}

/// Parallel canonical regeneration is byte-identical to the committed
/// artifacts: the `--jobs` knob of `mct regen-descs` / `mct infer` can
/// never change a description file (the `collect_parallel` determinism
/// contract, checked here end-to-end through inference, enrichment and
/// serialization on every preset).
#[test]
fn parallel_canonical_inference_is_byte_identical() {
    for spec in all_specs() {
        let path = descs_dir().join(desc::default_filename(&spec.name));
        let on_disk = std::fs::read_to_string(&path).expect("committed desc exists");
        let rendered = desc::canonical_string_jobs(&spec, 8).expect("parallel canonical");
        assert_eq!(
            on_disk, rendered,
            "{}: jobs=8 regeneration differs",
            spec.name
        );
    }
}

/// The shipped (compiled-in) library is the same set of files.
#[test]
fn shipped_library_matches_committed_files() {
    let mut names = registry::shipped_names();
    names.sort_unstable();
    let mut specs: Vec<String> = all_specs().iter().map(|s| s.name.clone()).collect();
    specs.sort();
    assert_eq!(names, specs);
    for name in registry::shipped_names() {
        let path = descs_dir().join(desc::default_filename(name));
        let on_disk = std::fs::read_to_string(&path).expect("committed desc exists");
        assert_eq!(
            registry::shipped_source(name),
            Some(on_disk.as_str()),
            "{name}: compiled-in copy is stale"
        );
    }
}

/// Repeated and concurrent registry lookups share one `Arc<TopoView>`.
#[test]
fn registry_shares_one_view_per_topology() {
    let reg = Arc::new(Registry::shipped());
    let first = reg.view("sparc").expect("shipped sparc");
    assert!(Arc::ptr_eq(&first, &reg.view("sparc").unwrap()));

    let views: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let reg = Arc::clone(&reg);
                scope.spawn(move || reg.view("sparc").unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for view in &views {
        assert!(Arc::ptr_eq(&first, view));
    }
    assert_eq!(reg.cached(), 1);
}

/// Every shipped description builds a view and answers the basic
/// queries the application layers rely on.
#[test]
fn every_shipped_description_serves_queries() {
    let reg = Registry::shipped();
    for spec in all_specs() {
        let view = reg.view(&spec.name).expect("loadable");
        assert_eq!(view.num_hwcs(), spec.total_hwcs(), "{}", spec.name);
        assert_eq!(view.num_sockets(), spec.sockets, "{}", spec.name);
        assert!(view.intra_socket_latency() > 0, "{}", spec.name);
        assert!(view.socket_level().is_some(), "{}", spec.name);
        // Enrichment made it into the artifact.
        assert!(view.topo().caches.is_some(), "{}", spec.name);
        assert_eq!(view.topo().freq_ghz, Some(spec.freq_ghz), "{}", spec.name);
    }
    assert_eq!(reg.cached(), all_specs().len());
}
