//! Deterministic-policy property tests for `mctop-alloc`: over every
//! *committed* description (the shipped `descs/` library), allocation
//! plans must be stable across runs, cover every worker, and — for
//! `BwProportional` — stripe bytes within 1% of the enriched per-node
//! bandwidth ratios of the worker's socket.

use std::sync::OnceLock;

use proptest::prelude::*;

use mctop::{
    Registry,
    TopoView, //
};
use mctop_alloc::{
    AllocCfg,
    AllocPlan,
    AllocPolicy, //
};
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(Registry::shipped)
}

fn shipped_machines() -> Vec<&'static str> {
    mctop::registry::shipped_names()
}

const POLICIES: &[AllocPolicy] = &[
    AllocPolicy::Local,
    AllocPolicy::Interleave,
    AllocPolicy::BwProportional,
];

/// An arbitrary (machine, policy, thread-fraction, placement-policy)
/// choice over the committed description library.
fn arb_case() -> impl Strategy<Value = (usize, usize, u16, bool)> {
    (
        0usize..shipped_machines().len(),
        0usize..POLICIES.len(),
        any::<u16>(),
        any::<bool>(),
    )
}

fn setup(machine_idx: usize, threads_raw: u16, rr: bool) -> (std::sync::Arc<TopoView>, Placement) {
    let name = shipped_machines()[machine_idx];
    let view = registry().view(name).expect("committed desc loads");
    let threads = 1 + threads_raw as usize % view.num_hwcs();
    let place_policy = if rr { Policy::RrCore } else { Policy::ConHwc };
    let place = Placement::with_view(&view, place_policy, PlaceOpts::threads(threads))
        .expect("placement within capacity");
    (view, place)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plans are a pure function of (view, placement, policy, cfg):
    /// resolving twice yields the identical plan, and every worker of
    /// the placement gets exactly one arena whose stripes sum to the
    /// full arena size.
    #[test]
    fn plans_are_stable_and_cover_every_worker(case in arb_case()) {
        let (machine, policy_idx, threads_raw, rr) = case;
        let (view, place) = setup(machine, threads_raw, rr);
        let policy = &POLICIES[policy_idx];
        let cfg = AllocCfg::default();
        let a = AllocPlan::resolve(&view, &place, policy, &cfg).expect("resolves");
        let b = AllocPlan::resolve(&view, &place, policy, &cfg).expect("resolves");
        prop_assert_eq!(&a, &b, "plan not stable across runs");

        prop_assert_eq!(a.arenas.len(), place.order().len());
        let pages = a.bytes_per_worker / a.page_size;
        for (w, arena) in a.arenas.iter().enumerate() {
            prop_assert_eq!(arena.worker, w, "workers must be dense and ordered");
            prop_assert_eq!(arena.hwc, place.order()[w]);
            prop_assert_eq!(arena.socket, view.socket_of(arena.hwc));
            prop_assert!(!arena.stripes.is_empty());
            let total: usize = arena.stripes.iter().map(|s| s.pages).sum();
            prop_assert_eq!(total, pages, "stripes must cover the arena");
            let bytes: usize = arena.stripes.iter().map(|s| s.bytes).sum();
            prop_assert_eq!(bytes, a.bytes_per_worker);
            // Stripes are per-node, ascending, non-empty.
            for pair in arena.stripes.windows(2) {
                prop_assert!(pair[0].node < pair[1].node);
            }
            for stripe in &arena.stripes {
                prop_assert!(stripe.node < view.num_nodes());
                prop_assert!(stripe.pages > 0);
                prop_assert!(stripe.touch_worker < a.arenas.len());
            }
        }
    }

    /// `BwProportional` stripes every arena within 1% of the enriched
    /// per-node bandwidth ratios of the worker's socket, and `Local`
    /// puts everything on the worker's local node.
    #[test]
    fn stripe_ratios_follow_the_enriched_bandwidths(case in arb_case()) {
        let (machine, _policy_idx, threads_raw, rr) = case;
        let (view, place) = setup(machine, threads_raw, rr);
        let cfg = AllocCfg::default();

        let local = AllocPlan::resolve(&view, &place, &AllocPolicy::Local, &cfg)
            .expect("resolves");
        for arena in &local.arenas {
            prop_assert_eq!(arena.stripes.len(), 1);
            prop_assert_eq!(Some(arena.stripes[0].node), view.node_of(arena.hwc));
        }

        let bw = AllocPlan::resolve(&view, &place, &AllocPolicy::BwProportional, &cfg)
            .expect("committed descs are enriched");
        for arena in &bw.arenas {
            let weights = &view.sockets[arena.socket].mem_bandwidths;
            let wsum: f64 = weights.iter().sum();
            let psum: f64 = arena.stripes.iter().map(|s| s.bytes as f64).sum();
            // Every node with positive measured bandwidth gets a stripe.
            prop_assert_eq!(arena.stripes.len(), weights.len());
            for stripe in &arena.stripes {
                let got = stripe.bytes as f64 / psum;
                let want = weights[stripe.node] / wsum;
                prop_assert!(
                    (got - want).abs() < 0.01,
                    "machine {} worker {} node {}: fraction {} vs bandwidth ratio {}",
                    &bw.machine, arena.worker, stripe.node, got, want
                );
            }
        }
    }

    /// The saturation thread counts in the plan equal the RR_SCALE
    /// arithmetic over the enriched description, for every socket.
    #[test]
    fn saturation_matches_enriched_description(case in arb_case()) {
        let (machine, _policy_idx, threads_raw, rr) = case;
        let (view, place) = setup(machine, threads_raw, rr);
        let plan = AllocPlan::resolve(&view, &place, &AllocPolicy::Local, &AllocCfg::default())
            .expect("resolves");
        prop_assert_eq!(plan.saturation.len(), view.num_sockets());
        for sat in &plan.saturation {
            let s = &view.sockets[sat.socket];
            prop_assert_eq!(sat.local_node, s.local_node);
            let want = (s.local_bandwidth().unwrap() / s.single_core_bw.unwrap()).ceil()
                as usize;
            prop_assert_eq!(sat.threads, Some(want.max(1)));
        }
    }
}
