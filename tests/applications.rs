//! Cross-crate integration: the application studies (locks, sort,
//! MapReduce, OpenMP) running for real over inferred topologies.

use std::sync::Arc;

use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};

/// The canonical enriched topology of a preset, loaded from the shipped
/// description library (inference ran once, at `mct regen-descs` time).
fn enriched(spec: &mcsim::MachineSpec) -> mctop::Mctop {
    (*mctop::Registry::shipped()
        .topo(&spec.name)
        .expect("preset is in the shipped library"))
    .clone()
}

#[test]
fn locks_use_topology_quanta_and_stay_correct() {
    let topo = enriched(&mcsim::presets::synthetic_small());
    // The educated quantum for the whole machine.
    let backoff = mctop_locks::BackoffCfg::from_mctop_all(&topo);
    let view = mctop::view::TopoView::new(std::sync::Arc::new(topo.clone()));
    let hwcs: Vec<usize> = (0..topo.num_hwcs()).collect();
    assert_eq!(
        mctop_locks::BackoffCfg::from_view(&view, &hwcs),
        mctop_locks::BackoffCfg::from_mctop(&topo, &hwcs)
    );
    assert_eq!(backoff.quantum_cycles, 290);
    for algo in mctop_locks::LockAlgo::ALL {
        let lock = algo.build(backoff);
        let counter = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        mctop_locks::raw::with_lock(&*lock, || {
                            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.into_inner(), 4000);
    }
}

#[test]
fn sort_on_inferred_topology_of_each_small_machine() {
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
    let data: Vec<u32> = (0..120_000).map(|_| rng.gen()).collect();
    for spec in [
        mcsim::presets::synthetic_small(),
        mcsim::presets::clustered_l2(),
    ] {
        let topo = enriched(&spec);
        let mut v = data.clone();
        mctop_sort::mctop_sort(&mut v, &topo, 6, 1);
        assert!(v.windows(2).all(|w| w[0] <= w[1]), "{}", spec.name);
        assert_eq!(v.len(), data.len());
    }
}

#[test]
fn mapreduce_results_independent_of_placement_policy() {
    let topo = enriched(&mcsim::presets::synthetic_small());
    let text = mctop_mapred::workloads::gen_text(800, 25, 500, 3);
    let reference = {
        let place = Placement::new(&topo, Policy::Sequential, PlaceOpts::threads(2)).unwrap();
        mctop_mapred::engine::run_job(
            &mctop_mapred::workloads::WordCount,
            &text,
            &place,
            &Default::default(),
        )
    };
    for policy in [Policy::ConHwc, Policy::RrCore, Policy::BalanceCore] {
        let place = Placement::new(&topo, policy, PlaceOpts::threads(6)).unwrap();
        let out = mctop_mapred::engine::run_job(
            &mctop_mapred::workloads::WordCount,
            &text,
            &place,
            &Default::default(),
        );
        assert_eq!(out, reference, "{}", policy.name());
    }
}

#[test]
fn omp_kernels_agree_across_policies() {
    let topo = Arc::new(enriched(&mcsim::presets::synthetic_small()));
    let g = mctop_omp::graph::Graph::synthetic(2000, 6, 5);
    let rt = mctop_omp::OmpRuntime::new(Arc::clone(&topo), 4);
    rt.set_binding_policy(Policy::ConCoreHwc).unwrap();
    let d1 = mctop_omp::workloads::hop_distance(&rt, &g, 0);
    rt.set_binding_policy(Policy::BalanceHwc).unwrap();
    let d2 = mctop_omp::workloads::hop_distance(&rt, &g, 0);
    assert_eq!(d1, d2);
    let l1 = mctop_omp::workloads::communities(&rt, &g, 4);
    rt.set_binding_policy(Policy::RrHwc).unwrap();
    let l2 = mctop_omp::workloads::communities(&rt, &g, 4);
    assert_eq!(l1, l2);
}

#[test]
fn work_stealing_follows_inferred_latencies() {
    let topo = enriched(&mcsim::presets::clustered_l2());
    // Workers: SMT pair of core 0, its L2-cluster partner core, a
    // far core, a remote socket.
    let socket0 = topo.socket_get_hwcs(0).to_vec();
    let remote = topo.socket_get_hwcs(1)[0];
    let workers = vec![socket0[0], socket0[1], socket0[2], remote];
    let order = mctop_runtime::StealOrder::compute(&topo, &workers);
    let view = mctop::view::TopoView::new(std::sync::Arc::new(topo.clone()));
    assert_eq!(mctop_runtime::StealOrder::with_view(&view, &workers), order);
    // Closest victim of worker 0 is whatever has the lowest latency —
    // must not be the remote socket.
    assert_ne!(order.victims(0)[0], 3);
    assert_eq!(*order.victims(0).last().unwrap(), 3);
}

#[test]
fn runtime_pool_runs_on_placement_of_inferred_topology() {
    let topo = Arc::new(enriched(&mcsim::presets::no_smt_small()));
    let place =
        Arc::new(Placement::new(&topo, Policy::BalanceCore, PlaceOpts::threads(4)).unwrap());
    let pool = mctop_runtime::WorkerPool::new(place).without_os_pinning();
    let sockets = pool.run(|ctx| ctx.socket());
    // BALANCE over 2 sockets: two workers each.
    assert_eq!(sockets.iter().filter(|&&s| s == 0).count(), 2);
    assert_eq!(sockets.iter().filter(|&&s| s == 1).count(), 2);
}
