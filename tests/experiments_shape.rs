//! The headline shape claims of the paper's evaluation, asserted over
//! the experiment harnesses (these are the invariants EXPERIMENTS.md
//! reports; if one breaks, the reproduction regressed).

use mctop_bench::enriched_topology;

#[test]
fn fig8_ticket_wins_most_on_every_platform() {
    use mctop_locks::sim::{
        fig8_series,
        SimParams, //
    };
    let params = SimParams {
        duration_cycles: 6_000_000,
        ..SimParams::default()
    };
    for spec in mcsim::presets::all_paper_platforms() {
        let counts = [4usize, spec.total_hwcs() / 2, spec.total_hwcs()];
        let avg = |algo| {
            let s = fig8_series(&spec, algo, &counts, &params);
            s.iter().map(|p| p.relative).sum::<f64>() / s.len() as f64
        };
        let tas = avg(mctop_locks::LockAlgo::Tas);
        let ticket = avg(mctop_locks::LockAlgo::Ticket);
        assert!(ticket > tas, "{}: ticket {ticket} vs tas {tas}", spec.name);
        assert!(ticket > 1.15, "{}: ticket {ticket}", spec.name);
    }
}

#[test]
fn fig9_mctop_sort_beats_gnu_everywhere() {
    use mctop_sort::model::{
        predict,
        SortAlgo,
        SortModelCfg, //
    };
    let cfg = SortModelCfg::default();
    let mut merge_ratios = Vec::new();
    for spec in mcsim::presets::all_paper_platforms() {
        let topo = enriched_topology(&spec);
        for threads in [16usize, spec.total_hwcs()] {
            let gnu = predict(&spec, &topo, SortAlgo::Gnu, threads, &cfg);
            let mc = predict(&spec, &topo, SortAlgo::Mctop, threads, &cfg);
            assert!(mc.total() < gnu.total(), "{} {threads}", spec.name);
            merge_ratios.push(gnu.merge_s / mc.merge_s);
        }
    }
    // Paper: merging 25% faster on average.
    let avg = merge_ratios.iter().sum::<f64>() / merge_ratios.len() as f64;
    assert!(avg > 1.15, "average merge speedup {avg}");
}

#[test]
fn fig10_metis_never_catastrophically_regresses_and_wins_overall() {
    let mut rels = Vec::new();
    for spec in mcsim::presets::all_paper_platforms() {
        let topo = enriched_topology(&spec);
        for bar in mctop_mapred::model::fig10_platform(&spec, &topo) {
            assert!(bar.rel_time < 1.10, "{} {}", bar.platform, bar.workload);
            rels.push(bar.rel_time);
        }
    }
    let avg = rels.iter().sum::<f64>() / rels.len() as f64;
    assert!(avg < 0.95, "average {avg}");
}

#[test]
fn fig11_power_policy_trades_time_for_energy() {
    let spec = mcsim::presets::ivy();
    let topo = enriched_topology(&spec);
    let rows = mctop_mapred::model::fig11(&spec, &topo);
    assert_eq!(rows.len(), 2);
    for row in rows {
        assert!(row.time > 1.0 && row.energy < 1.0, "{:?}", row);
    }
}

#[test]
fn fig12_mctop_mp_wins_overall_and_on_combination() {
    let mut rels = Vec::new();
    for spec in mctop_omp::model::fig12_platforms() {
        let topo = enriched_topology(&spec);
        let bars = mctop_omp::model::fig12_platform(&spec, &topo);
        let combo = bars.iter().find(|b| b.workload == "Combination").unwrap();
        assert!(combo.rel_time <= 1.04, "{}: {}", spec.name, combo.rel_time);
        rels.extend(bars.iter().map(|b| b.rel_time));
    }
    let avg = rels.iter().sum::<f64>() / rels.len() as f64;
    assert!(avg < 0.97, "average {avg}");
}

#[test]
fn alg_cost_matches_section_3_5_orders() {
    // ~3 s on Ivy, 96 s on Westmere (with DVFS): the model must land in
    // the right order of magnitude with a >10x gap.
    let ivy = mcsim::presets::ivy();
    let west = mcsim::presets::westmere();
    let cost = |spec: &mcsim::MachineSpec| {
        let mut p = mctop::backend::SimProber::noiseless(spec);
        let cfg = mctop::ProbeConfig {
            reps: 25,
            ..mctop::ProbeConfig::default()
        };
        let (_, stats) = mctop::alg::probe::collect(&mut p, &cfg).unwrap();
        stats
            .scaled_to_reps(25, 2000)
            .modeled_seconds(spec.freq_ghz)
    };
    let t_ivy = cost(&ivy);
    let t_west = cost(&west);
    assert!((1.0..=10.0).contains(&t_ivy), "ivy {t_ivy}");
    assert!((30.0..=200.0).contains(&t_west), "westmere {t_west}");
    assert!(t_west / t_ivy > 10.0);
}

#[test]
fn fig1_to_fig3_dot_outputs_render() {
    for (spec, needle) in [
        (mcsim::presets::opteron(), "197 cy"),
        (mcsim::presets::westmere(), "341 cy"),
        (mcsim::presets::sparc(), "Node"),
    ] {
        let topo = enriched_topology(&spec);
        let dot = mctop::fmt::dot::full(&topo);
        assert!(dot.contains(needle), "{}: missing {needle}", spec.name);
    }
    // Fig. 1b/2b: two-hop levels called out.
    let opteron = enriched_topology(&mcsim::presets::opteron());
    assert!(mctop::fmt::dot::cross_socket(&opteron).contains("(2 hops)"));
}
