//! End-to-end pipeline tests: probe -> infer -> validate -> enrich ->
//! place, on every modelled platform.

use mctop::alg::validate::{
    compare_with_os,
    validate,
    Divergence,
    OsTopology, //
};
use mctop::backend::SimProber;
use mctop::enrich::{
    enrich_all,
    SimEnricher, //
};
use mctop::ProbeConfig;
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};

fn infer(spec: &mcsim::MachineSpec) -> mctop::Mctop {
    let mut p = SimProber::noiseless(spec);
    let cfg = ProbeConfig {
        reps: 3,
        ..ProbeConfig::fast()
    };
    mctop::infer(&mut p, &cfg).unwrap()
}

#[test]
fn every_paper_platform_is_inferred_exactly() {
    for spec in mcsim::presets::all_paper_platforms() {
        let topo = infer(&spec);
        assert_eq!(topo.num_sockets(), spec.sockets, "{}", spec.name);
        assert_eq!(topo.num_cores(), spec.total_cores(), "{}", spec.name);
        assert_eq!(topo.smt(), spec.smt_per_core, "{}", spec.name);
        assert_eq!(topo.num_hwcs(), spec.total_hwcs(), "{}", spec.name);
        validate(&topo).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        // Latency table matches ground truth everywhere.
        for a in 0..spec.total_hwcs() {
            for b in 0..spec.total_hwcs() {
                assert_eq!(
                    topo.get_latency(a, b),
                    spec.true_latency(a, b),
                    "{}: pair ({a},{b})",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn every_synthetic_platform_is_inferred_exactly() {
    for spec in mcsim::presets::all_synthetic() {
        let topo = infer(&spec);
        assert_eq!(topo.num_sockets(), spec.sockets, "{}", spec.name);
        assert_eq!(topo.num_cores(), spec.total_cores(), "{}", spec.name);
        assert_eq!(topo.smt(), spec.smt_per_core, "{}", spec.name);
        validate(&topo).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    }
}

#[test]
fn inference_with_default_noise_and_dvfs_still_exact() {
    // The paper's default configuration: noisy probes, DVFS ramping,
    // median-of-n with retries. Structure must still be exact.
    for spec in [mcsim::presets::ivy(), mcsim::presets::opteron()] {
        for seed in [1u64, 7, 42] {
            let mut p = SimProber::new(&spec, seed);
            let topo = mctop::infer(&mut p, &ProbeConfig::fast())
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", spec.name));
            assert_eq!(topo.num_sockets(), spec.sockets);
            assert_eq!(topo.num_cores(), spec.total_cores());
            assert_eq!(topo.smt(), spec.smt_per_core);
        }
    }
}

#[test]
fn opteron_pipeline_detects_the_os_misconfiguration() {
    // Footnote 1 of the paper, end to end: inference + memory plugin
    // produce the physical node mapping; the comparison against the
    // (wrong) OS view reports exactly the node-mapping divergences.
    let spec = mcsim::presets::opteron();
    let mut topo = infer(&spec);
    let mut mem = SimEnricher::new(&spec);
    let mut pow = SimEnricher::new(&spec);
    enrich_all(&mut topo, &mut mem, &mut pow).unwrap();
    let os = OsTopology::from_spec(&spec);
    let divs = compare_with_os(&topo, &os);
    assert_eq!(divs.len(), 8);
    for d in &divs {
        let Divergence::NodeMapping {
            socket,
            os_node,
            mctop_node,
        } = d
        else {
            panic!("unexpected divergence {d:?}");
        };
        // The measured mapping is the physical one; the OS mapping is
        // the swapped one.
        let phys_socket = spec.loc(topo.sockets[*socket].hwcs[0]).socket;
        assert_eq!(*mctop_node, spec.local_node_of_socket[phys_socket]);
        assert_eq!(*os_node, spec.os_node_of_socket[phys_socket]);
    }
}

#[test]
fn clean_platforms_match_their_os_view() {
    for spec in [
        mcsim::presets::ivy(),
        mcsim::presets::westmere(),
        mcsim::presets::sparc(),
    ] {
        let mut topo = infer(&spec);
        let mut mem = SimEnricher::new(&spec);
        let mut pow = SimEnricher::new(&spec);
        enrich_all(&mut topo, &mut mem, &mut pow).unwrap();
        let os = OsTopology::from_spec(&spec);
        assert!(compare_with_os(&topo, &os).is_empty(), "{}", spec.name);
    }
}

#[test]
fn placement_works_on_every_platform_and_policy() {
    for spec in mcsim::presets::all_paper_platforms() {
        let mut topo = infer(&spec);
        let mut mem = SimEnricher::new(&spec);
        let mut pow = SimEnricher::new(&spec);
        enrich_all(&mut topo, &mut mem, &mut pow).unwrap();
        for policy in Policy::ALL {
            let res = Placement::new(&topo, policy, PlaceOpts::default());
            match policy {
                Policy::Power if !spec.power.has_rapl => continue,
                _ => {}
            }
            let place = res.unwrap_or_else(|e| panic!("{} {}: {e}", spec.name, policy.name()));
            // No duplicate contexts; all in range.
            let mut seen = vec![false; topo.num_hwcs()];
            for &h in place.order() {
                assert!(!seen[h], "{} {}: duplicate {h}", spec.name, policy.name());
                seen[h] = true;
            }
        }
    }
}

#[test]
fn hostile_noise_fails_loudly_not_wrongly() {
    // Section 3.6: when measurements are too noisy, the library reports
    // an error instead of inventing a topology.
    let spec = mcsim::presets::synthetic_small();
    let mut p = SimProber::with_noise(&spec, 5, mcsim::NoiseCfg::hostile());
    let cfg = ProbeConfig {
        reps: 21,
        max_retries: 1,
        ..ProbeConfig::fast()
    };
    let res = mctop::infer(&mut p, &cfg);
    assert!(res.is_err());
}

#[test]
fn single_core_per_socket_machine() {
    // Degenerate shape: 4 sockets x 1 core x 1 context.
    let mut spec = mcsim::presets::no_smt_small();
    spec.name = "synth-1core".into();
    spec.sockets = 4;
    spec.cores_per_socket = 1;
    spec.nodes = 4;
    spec.intra_levels = vec![mcsim::machine::IntraLevel {
        group_cores: 1,
        latency: 50,
    }];
    spec.interconnect = mcsim::Interconnect::full(4, 180, 110, 10.0);
    spec.local_node_of_socket = vec![0, 1, 2, 3];
    spec.os_node_of_socket = vec![0, 1, 2, 3];
    // A 1-core socket has no intra level in practice; the spec check
    // requires one, so the level covers the single core trivially.
    spec.check().unwrap();
    let topo = infer(&spec);
    assert_eq!(topo.num_sockets(), 4);
    assert_eq!(topo.num_cores(), 4);
    assert_eq!(topo.smt(), 1);
}
