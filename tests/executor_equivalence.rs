//! Executor equivalence: the executor-backed workloads must produce
//! **byte-identical** results to the pre-refactor scoped-thread paths,
//! across every committed description and worker counts {1, 2, 8}.
//!
//! The pre-refactor paths were deterministic functions of the input
//! (sort: the ascending permutation; MapReduce: per-key value lists in
//! original item order, keys ascending; OpenMP: each index produced by
//! exactly one body call), so each property compares against a
//! sequential reference computing exactly that function — any
//! scheduling artifact of the executor (steal order, worker count,
//! batch hand-off) would show up as a mismatch.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use proptest::prelude::*;

use mctop::{
    Registry,
    TopoView, //
};
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};
use mctop_runtime::{
    ExecCfg,
    Executor, //
};

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(Registry::shipped)
}

fn shipped_machines() -> Vec<&'static str> {
    mctop::registry::shipped_names()
}

/// The worker counts of the satellite contract, clamped per machine.
const WORKER_COUNTS: &[usize] = &[1, 2, 8];

/// An arbitrary (machine, worker-count, placement-policy, seed) case
/// over the committed description library.
fn arb_case() -> impl Strategy<Value = (usize, usize, bool, u64)> {
    (
        0usize..shipped_machines().len(),
        0usize..WORKER_COUNTS.len(),
        any::<bool>(),
        any::<u64>(),
    )
}

fn setup(machine_idx: usize, workers_idx: usize) -> (std::sync::Arc<TopoView>, usize) {
    let name = shipped_machines()[machine_idx];
    let view = registry().view(name).expect("committed desc loads");
    let workers = WORKER_COUNTS[workers_idx].min(view.num_hwcs());
    (view, workers)
}

fn executor(view: &TopoView, workers: usize, rr: bool) -> Executor {
    let policy = if rr { Policy::RrCore } else { Policy::ConHwc };
    let placement = Placement::with_view(view, policy, PlaceOpts::threads(workers))
        .expect("placement within capacity");
    Executor::with_cfg(
        Some(view),
        &placement,
        ExecCfg {
            workers: None,
            os_pin: false,
        },
    )
}

fn random_data(n: usize, seed: u64) -> Vec<u32> {
    // Tiny xorshift so the property owns its data shape.
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 0xffff_ffff) as u32
        })
        .collect()
}

/// An order-sensitive MapReduce job: `Out` keeps the reduction input
/// order, so any shuffle/ordering change in the engine is visible.
struct KeyedCollect;

impl mctop_mapred::MapReduce for KeyedCollect {
    type Item = u32;
    type K = u32;
    type V = u32;
    type Out = Vec<u32>;
    fn map(&self, item: &u32, emit: &mut dyn FnMut(u32, u32)) {
        emit(item % 17, *item);
    }
    fn reduce(&self, _k: &u32, values: Vec<u32>) -> Vec<u32> {
        values
    }
}

/// What the scoped-thread engine always produced for [`KeyedCollect`]:
/// chunks are contiguous and ascending and per-partition tables merge
/// in worker order, so each key's values appear in original item
/// order; keys ascend.
fn mapred_reference(items: &[u32]) -> Vec<(u32, Vec<u32>)> {
    let mut grouped: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &item in items {
        grouped.entry(item % 17).or_default().push(item);
    }
    grouped.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Executor-backed mctop_sort (scalar and SSE kernels) returns the
    /// exact bytes the scoped-thread sort returned: the ascending
    /// permutation of the input, for every desc × worker count.
    #[test]
    fn sort_matches_prerefactor_bytes(case in arb_case()) {
        let (machine, workers_idx, rr, seed) = case;
        let (view, workers) = setup(machine, workers_idx);
        let exec = executor(&view, workers, rr);
        let data = random_data(20_000 + (seed as usize % 3), seed);
        let mut reference = data.clone();
        reference.sort_unstable();

        let mut scratch = mctop_sort::SortScratch::new();
        let mut scalar = data.clone();
        mctop_sort::mctop_sort_on(
            &exec,
            &mut scalar,
            &view,
            (seed as usize) % view.num_sockets(),
            &mut scratch,
        );
        prop_assert_eq!(&scalar, &reference, "scalar kernel diverged");

        let mut sse = data.clone();
        mctop_sort::mctop_sort_sse_on(&exec, &mut sse, &view, 0, &mut scratch);
        prop_assert_eq!(&sse, &reference, "bitonic kernel diverged");

        // Forcing each supported kernel table produces the same bytes.
        for table in mctop_sort::simd::supported() {
            let mut forced = data.clone();
            mctop_sort::mctop_sort_kernel_on(&exec, &mut forced, &view, 0, &mut scratch, table);
            prop_assert_eq!(&forced, &reference, "kernel {} diverged", table.name);
        }

        // The transient-executor convenience path agrees too.
        let mut with_view = data;
        mctop_sort::mctop_sort_with_view(&mut with_view, &view, workers, 0);
        prop_assert_eq!(&with_view, &reference, "with_view path diverged");
    }

    /// Executor-backed MapReduce keeps the engine's full ordering
    /// contract — per-key value order included — for every desc ×
    /// worker count × partition count.
    #[test]
    fn mapred_matches_prerefactor_bytes(case in arb_case()) {
        let (machine, workers_idx, rr, seed) = case;
        let (view, workers) = setup(machine, workers_idx);
        let exec = executor(&view, workers, rr);
        let items = random_data(4_000, seed ^ 0x9e37);
        let reference = mapred_reference(&items);
        for partitions in [None, Some(1), Some(64)] {
            let cfg = mctop_mapred::EngineCfg { partitions };
            let out = mctop_mapred::run_job_on(&exec, &KeyedCollect, &items, &cfg);
            prop_assert_eq!(&out, &reference, "partitions={:?}", partitions);
        }
        // And the placement-based entry point (transient executor).
        let policy = if rr { Policy::RrCore } else { Policy::ConHwc };
        let place = Placement::with_view(&view, policy, PlaceOpts::threads(workers)).unwrap();
        let out = mctop_mapred::run_job(&KeyedCollect, &items, &place, &Default::default());
        prop_assert_eq!(&out, &reference, "run_job path diverged");
    }

    /// Executor-backed OpenMP regions: every index produced exactly
    /// once with its exact value, and reductions equal the sequential
    /// fold, across binding-policy switches (which re-arm the team).
    #[test]
    fn omp_matches_prerefactor_bytes(case in arb_case()) {
        let (machine, workers_idx, _rr, seed) = case;
        let name = shipped_machines()[machine];
        let topo = registry().topo(name).expect("committed desc loads");
        let view = registry().view(name).expect("committed desc loads");
        let workers = WORKER_COUNTS[workers_idx].min(view.num_hwcs());
        let rt = mctop_omp::OmpRuntime::new(topo, workers);
        let n = 5_000 + (seed as usize % 7);
        let reference: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(2654435761) ^ seed).collect();
        for policy in [Policy::None, Policy::RrCore, Policy::ConHwc] {
            rt.set_binding_policy(policy).expect("policy places");
            let mut out = vec![0u64; n];
            {
                let slots: Vec<std::sync::atomic::AtomicU64> =
                    (0..n).map(|_| std::sync::atomic::AtomicU64::new(0)).collect();
                rt.parallel_for(n, |i| {
                    slots[i].store(
                        (i as u64).wrapping_mul(2654435761) ^ seed,
                        std::sync::atomic::Ordering::Relaxed,
                    );
                });
                for (slot, v) in out.iter_mut().zip(&slots) {
                    *slot = v.load(std::sync::atomic::Ordering::Relaxed);
                }
            }
            prop_assert_eq!(&out, &reference, "policy={}", policy.name());
            let total = rt.parallel_reduce(
                n,
                0u64,
                |range, acc| acc + range.map(|i| i as u64).sum::<u64>(),
                |a, b| a + b,
            );
            prop_assert_eq!(total, (n as u64 - 1) * n as u64 / 2, "reduce diverged");
        }
    }
}
