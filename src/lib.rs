//! Umbrella crate of the MCTOP reproduction workspace.
//!
//! The substance lives in the member crates:
//!
//! - [`mcsim`]: simulated multi-core machines (the hardware substrate);
//! - [`mctop`]: the MCTOP abstraction + MCTOP-ALG inference;
//! - [`mctop_place`]: the 12 thread-placement policies;
//! - [`mctop_runtime`]: placement-aware worker pools and work stealing;
//! - [`mctop_locks`]: spinlocks with educated backoffs (Fig. 8);
//! - [`mctop_sort`]: topology-aware mergesort (Fig. 9);
//! - [`mctop_mapred`]: the Metis-like MapReduce study (Figs. 10-11);
//! - [`mctop_omp`]: the extended-OpenMP study (Fig. 12).
//!
//! This crate hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). See README.md for the
//! quickstart and DESIGN.md for the system inventory.

pub use mcsim;
pub use mctop;
pub use mctop_locks;
pub use mctop_mapred;
pub use mctop_omp;
pub use mctop_place;
pub use mctop_runtime;
pub use mctop_sort;
